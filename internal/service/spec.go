package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"gsnp/internal/genomejob"
)

// JobSpec is the JSON body of POST /jobs: one genome-calling job, either a
// server-local genome directory (the paper's 24-file production layout) or
// an uploaded set of ref/aln pairs carried inline. Exactly one of
// GenomeDir and Inputs must be set.
type JobSpec struct {
	// GenomeDir names a server-local directory of <chr>.fa/<chr>.soap
	// pairs, decomposed exactly like the CLI's -genome-dir mode.
	GenomeDir string `json:"genome_dir,omitempty"`
	// Inputs carries the job's data inline; the server spools each input
	// to disk for the run and deletes it when the job finishes.
	Inputs []InputSpec `json:"inputs,omitempty"`

	// Engine is soapsnp, gsnp-cpu or gsnp-gpu (default gsnp-cpu).
	Engine string `json:"engine,omitempty"`
	// Format is the input format: soap (default), sam, or fastq (raw
	// reads, aligned in-process before calling).
	Format string `json:"format,omitempty"`
	// Window is sites per window (0 = engine default).
	Window int `json:"window,omitempty"`
	// ComputeWorkers shards likelihood/posterior within a window.
	ComputeWorkers int `json:"compute_workers,omitempty"`
	// Prefetch overlaps window read I/O with computation.
	Prefetch bool `json:"prefetch,omitempty"`
	// Compress streams the GSNP compressed container instead of text.
	Compress bool `json:"compress,omitempty"`
	// Quarantine contains malformed records and panicking windows; the
	// affected chromosome completes degraded instead of failing.
	Quarantine bool `json:"quarantine,omitempty"`
	// OutputFormat selects the result codec: "" or "rows" for the
	// 17-column table, "vcf" for VCFv4.2 variant records.
	OutputFormat string `json:"output_format,omitempty"`
	// AlignMaxMismatch is the aligner's per-read mismatch budget (fastq
	// format only; 0 = default 2).
	AlignMaxMismatch int `json:"align_max_mismatch,omitempty"`
	// AlignSeedLen is the aligner's k-mer seed length (fastq format only;
	// 0 = default 16, max 31).
	AlignSeedLen int `json:"align_seed_len,omitempty"`
}

// InputSpec is one uploaded chromosome: file contents carried as JSON
// strings (the alignment and reference formats are plain text).
type InputSpec struct {
	// Name is the chromosome name, used as the spooled file stem; it must
	// be a plain name, no path separators.
	Name string `json:"name"`
	// Ref is the reference FASTA text.
	Ref string `json:"ref"`
	// Aln is the alignment text in the job's Format.
	Aln string `json:"aln"`
	// SNP is the optional known-SNP prior text.
	SNP string `json:"snp,omitempty"`
}

// ParseJobSpec decodes and validates a job spec. Unknown fields are
// rejected so a typoed option fails loudly instead of silently selecting a
// default.
func ParseJobSpec(data []byte) (*JobSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var spec JobSpec
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("job spec: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("job spec: trailing data after JSON object")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &spec, nil
}

// Validate applies defaults and checks the spec's invariants.
func (s *JobSpec) Validate() error {
	if err := s.validateOptions(); err != nil {
		return err
	}
	if (s.GenomeDir == "") == (len(s.Inputs) == 0) {
		return fmt.Errorf("job spec: exactly one of genome_dir and inputs is required")
	}
	seen := make(map[string]bool, len(s.Inputs))
	for i, in := range s.Inputs {
		if in.Name == "" {
			return fmt.Errorf("job spec: inputs[%d]: name is required", i)
		}
		if strings.ContainsAny(in.Name, "/\\") || in.Name == "." || in.Name == ".." ||
			strings.ContainsRune(in.Name, 0) {
			return fmt.Errorf("job spec: inputs[%d]: invalid name %q", i, in.Name)
		}
		if seen[in.Name] {
			return fmt.Errorf("job spec: inputs[%d]: duplicate name %q", i, in.Name)
		}
		seen[in.Name] = true
		if in.Ref == "" {
			return fmt.Errorf("job spec: inputs[%d] (%s): ref is required", i, in.Name)
		}
		if in.Aln == "" {
			return fmt.Errorf("job spec: inputs[%d] (%s): aln is required", i, in.Name)
		}
	}
	return nil
}

// validateOptions applies engine-option defaults and checks them — the
// input-independent half of Validate. Journal recovery uses it directly:
// a recovered uploaded-inputs job carries its data in the journal-owned
// spool directory, not in the spec, so the one-of-genome_dir-and-inputs
// invariant does not apply to it.
func (s *JobSpec) validateOptions() error {
	if s.Engine == "" {
		s.Engine = "gsnp-cpu"
	}
	if s.Format == "" {
		s.Format = "soap"
	}
	o := s.Options()
	return o.Validate()
}

// Options maps the spec onto the shared engine configuration.
func (s *JobSpec) Options() genomejob.Options {
	return genomejob.Options{
		Engine:           s.Engine,
		Format:           s.Format,
		Window:           s.Window,
		ComputeWorkers:   s.ComputeWorkers,
		Prefetch:         s.Prefetch,
		Compress:         s.Compress,
		Quarantine:       s.Quarantine,
		OutputFormat:     s.OutputFormat,
		AlignMaxMismatch: s.AlignMaxMismatch,
		AlignSeedLen:     s.AlignSeedLen,
	}
}
