package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gsnp/internal/faults"
	"gsnp/internal/genomejob"
)

// finalFaults builds an injector whose single disk fault lands on the
// first job's Final append: the journal's Open compaction is disk op 1
// ("rotate"), the job's Accept is op 2, its Final is op 3. The job then
// completes normally in-process but stays pending in the WAL with its
// spool/work dirs intact — exactly the on-disk state a crash mid-job
// leaves behind, reachable without kill -9.
func finalFaults() *faults.Injector {
	return faults.New(faults.Config{DiskFailEvery: 3, DiskFails: 1})
}

// drainT drains a server within a test-scoped deadline.
func drainT(t *testing.T, srv *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestServiceJournalRecovery is the in-process half of the crash-recovery
// acceptance scenario: a journaled job whose terminal record never landed
// is re-enqueued on the next startup, chromosomes with valid checkpoints
// replay without re-executing (zero pool dispatches for them), a
// tampered checkpoint output is recomputed, and the recovered stream is
// byte-identical to an uninterrupted run.
func TestServiceJournalRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("service e2e in -short mode")
	}
	opts := genomejob.Options{Engine: "gsnp-cpu", Format: "soap", Window: 256}
	dir := t.TempDir()
	writeGenomeDir(t, dir, testSpecs(3, 1400, 61))
	base := serialBaseline(t, dir, opts)
	jdir := filepath.Join(t.TempDir(), "journal")

	// First incarnation: the Final append is faulted, so the completed job
	// remains pending in the WAL with its work dir (checkpointed outputs)
	// kept.
	srvA, tsA := newTestServer(t, Config{Workers: 2, JournalDir: jdir, DiskFaults: finalFaults()})
	id := postJob(t, tsA, map[string]any{"genome_dir": dir, "engine": "gsnp-cpu", "window": 256})
	if _, state := readStream(t, tsA, id); state != StateDone {
		t.Fatalf("first run state %q, want done", state)
	}
	tsA.Close()
	drainT(t, srvA)

	workdir := filepath.Join(jdir, "work", id)
	if _, err := os.Stat(filepath.Join(workdir, "chr01.result")); err != nil {
		t.Fatalf("checkpointed output missing after faulted Final: %v", err)
	}
	// Tamper one checkpointed output: recovery must detect the digest
	// mismatch and recompute that chromosome rather than serve bad bytes.
	if err := os.WriteFile(filepath.Join(workdir, "chr02.result"), []byte("tampered\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Second incarnation: same journal dir, no faults.
	var dispatches atomic.Int64
	srvB, tsB := newTestServer(t, Config{
		Workers: 2, JournalDir: jdir,
		OnDequeue: func(string, int) { dispatches.Add(1) },
	})
	if st := srvB.Statz(); st.RecoveredJobs != 1 || !st.JournalEnabled {
		t.Fatalf("statz after recovery: recovered=%d journal=%t, want 1/true", st.RecoveredJobs, st.JournalEnabled)
	}
	recs, state := readStream(t, tsB, id)
	if state != StateDone {
		t.Fatalf("recovered job state %q, want done", state)
	}
	for name, want := range base {
		rec, ok := recs[name]
		if !ok {
			t.Fatalf("recovered stream missing %s", name)
		}
		if !bytes.Equal(rec.OutputB64, want) {
			t.Errorf("%s: recovered bytes differ from uninterrupted run", name)
		}
	}
	// chr01/chr03 replayed from checkpoints; only tampered chr02 re-ran.
	if !recs["chr01.fa"].Recovered || !recs["chr03.fa"].Recovered {
		t.Errorf("checkpointed chromosomes not marked recovered: %+v %+v", recs["chr01.fa"], recs["chr03.fa"])
	}
	if recs["chr02.fa"].Recovered {
		t.Error("tampered chromosome served from checkpoint instead of recomputing")
	}
	if n := dispatches.Load(); n != 1 {
		t.Errorf("pool dispatched %d tasks during recovery, want 1 (only the tampered chromosome)", n)
	}
	st := getStatus(t, tsB, id)
	if !st.Recovered {
		t.Error("recovered job not marked in its status document")
	}
	tsB.Close()
	drainT(t, srvB)

	// The recovered job finalized durably this time: a third incarnation
	// has nothing to recover, and the job's dirs are gone.
	srvC, _ := newTestServer(t, Config{Workers: 1, JournalDir: jdir})
	if st := srvC.Statz(); st.RecoveredJobs != 0 {
		t.Fatalf("third open recovered %d jobs, want 0", st.RecoveredJobs)
	}
	if _, err := os.Stat(workdir); !os.IsNotExist(err) {
		t.Errorf("work dir survived durable finalize: %v", err)
	}
}

// TestServiceJournalUploadedRecovery: uploaded inputs live in the
// journal-owned spool and survive a restart; a tampered spool file fails
// the recovered job cleanly (digest mismatch) while the server keeps
// serving fresh jobs.
func TestServiceJournalUploadedRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("service e2e in -short mode")
	}
	opts := genomejob.Options{Engine: "gsnp-cpu", Format: "soap", Window: 256}
	dir := t.TempDir()
	writeGenomeDir(t, dir, testSpecs(2, 1200, 83))
	base := serialBaseline(t, dir, opts)

	var inputs []map[string]any
	for _, name := range []string{"chr01", "chr02"} {
		ref, _ := os.ReadFile(filepath.Join(dir, name+".fa"))
		aln, _ := os.ReadFile(filepath.Join(dir, name+".soap"))
		snp, _ := os.ReadFile(filepath.Join(dir, name+".snp"))
		inputs = append(inputs, map[string]any{
			"name": name, "ref": string(ref), "aln": string(aln), "snp": string(snp),
		})
	}

	run := func(t *testing.T, tamper bool) {
		jdir := filepath.Join(t.TempDir(), "journal")
		srvA, tsA := newTestServer(t, Config{Workers: 2, JournalDir: jdir, DiskFaults: finalFaults()})
		id := postJob(t, tsA, map[string]any{"inputs": inputs, "engine": "gsnp-cpu", "window": 256})
		if _, state := readStream(t, tsA, id); state != StateDone {
			t.Fatalf("first run state %q, want done", state)
		}
		tsA.Close()
		drainT(t, srvA)

		spooled := filepath.Join(jdir, "spool", id, "chr01.soap")
		if _, err := os.Stat(spooled); err != nil {
			t.Fatalf("spooled upload did not survive the restart boundary: %v", err)
		}
		if tamper {
			if err := os.WriteFile(spooled, []byte("not an alignment\n"), 0o644); err != nil {
				t.Fatal(err)
			}
		}

		srvB, tsB := newTestServer(t, Config{Workers: 2, JournalDir: jdir})
		recs, state := readStream(t, tsB, id)
		if tamper {
			if state != StateFailed {
				t.Fatalf("tampered-spool recovery state %q, want failed", state)
			}
			// The server is healthy: a fresh job still executes.
			id2 := postJob(t, tsB, map[string]any{"inputs": inputs, "engine": "gsnp-cpu", "window": 256})
			if _, state2 := readStream(t, tsB, id2); state2 != StateDone {
				t.Fatalf("fresh job after failed recovery: %q, want done", state2)
			}
		} else {
			if state != StateDone {
				t.Fatalf("recovered upload job state %q, want done", state)
			}
			for name, want := range base {
				if !bytes.Equal(recs[name].OutputB64, want) {
					t.Errorf("%s: recovered upload bytes differ", name)
				}
			}
		}
		tsB.Close()
		drainT(t, srvB)
	}
	t.Run("intact", func(t *testing.T) { run(t, false) })
	t.Run("tampered", func(t *testing.T) { run(t, true) })
}

// TestServiceJournalAppendFault: a disk fault on the Accept append fails
// that one submission with ErrJournal (HTTP 500), nothing is journaled
// for it, and the server keeps accepting and completing later jobs,
// draining cleanly.
func TestServiceJournalAppendFault(t *testing.T) {
	if testing.Short() {
		t.Skip("service e2e in -short mode")
	}
	dir := t.TempDir()
	writeGenomeDir(t, dir, testSpecs(1, 1200, 29))
	jdir := filepath.Join(t.TempDir(), "journal")

	// Disk ops: Open compaction = 1, first Accept = 2 (faulted; budget 1).
	inj := faults.New(faults.Config{DiskFailEvery: 2, DiskFails: 1})
	srv, ts := newTestServer(t, Config{Workers: 1, JournalDir: jdir, DiskFaults: inj})

	body, _ := json.Marshal(map[string]any{"genome_dir": dir, "engine": "gsnp-cpu", "window": 256})
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("faulted submission: %d %s, want 500", resp.StatusCode, data)
	}
	if !strings.Contains(string(data), "journal") {
		t.Fatalf("error body does not name the journal: %s", data)
	}

	// The very next submission succeeds and completes.
	id := postJob(t, ts, map[string]any{"genome_dir": dir, "engine": "gsnp-cpu", "window": 256})
	if _, state := readStream(t, ts, id); state != StateDone {
		t.Fatalf("job after faulted append: %q, want done", state)
	}
	ts.Close()
	drainT(t, srv)

	// Nothing pending: the faulted job was never durably accepted, the
	// successful one finalized.
	srv2, _ := newTestServer(t, Config{Workers: 1, JournalDir: jdir})
	if st := srv2.Statz(); st.RecoveredJobs != 0 {
		t.Fatalf("recovered %d jobs after clean shutdown, want 0", st.RecoveredJobs)
	}
}

// TestServiceMaxQueued: with the admission bound hit, submissions get 429
// + Retry-After; capacity freed by a finished job re-admits.
func TestServiceMaxQueued(t *testing.T) {
	if testing.Short() {
		t.Skip("service e2e in -short mode")
	}
	dirLong, dirSmall := t.TempDir(), t.TempDir()
	writeGenomeDir(t, dirLong, testSpecs(6, 5000, 17))
	writeGenomeDir(t, dirSmall, testSpecs(1, 1200, 53))

	_, ts := newTestServer(t, Config{Workers: 1, MaxQueued: 1, CacheOff: true})
	idLong := postJob(t, ts, map[string]any{"genome_dir": dirLong, "engine": "gsnp-cpu", "window": 256})

	body, _ := json.Marshal(map[string]any{"genome_dir": dirSmall, "engine": "gsnp-cpu", "window": 256})
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-bound submission: %d %s, want 429", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}

	// Cancel the long job; once it finalizes the bound frees up.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+idLong, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	readStream(t, ts, idLong) // wait for the cancel to finalize

	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusAccepted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("bound never freed after cancel: last status %d", resp.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServiceJournalConcurrentSubmissions: many concurrent journaled
// submissions (uploads included) all land durably and resolve; the WAL
// ends the session with nothing pending.
func TestServiceJournalConcurrentSubmissions(t *testing.T) {
	if testing.Short() {
		t.Skip("service e2e in -short mode")
	}
	dir := t.TempDir()
	writeGenomeDir(t, dir, testSpecs(1, 1200, 97))
	jdir := filepath.Join(t.TempDir(), "journal")

	srv, ts := newTestServer(t, Config{Workers: 2, JournalDir: jdir, CacheOff: true})
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			id := postJob(t, ts, map[string]any{"genome_dir": dir, "engine": "gsnp-cpu", "window": 256})
			if _, state := readStream(t, ts, id); state != StateDone {
				t.Errorf("job %s: %q, want done", id, state)
			}
		}()
	}
	wg.Wait()
	ts.Close()
	drainT(t, srv)

	srv2, _ := newTestServer(t, Config{Workers: 1, JournalDir: jdir})
	if st := srv2.Statz(); st.RecoveredJobs != 0 {
		t.Fatalf("recovered %d jobs after clean concurrent session, want 0", st.RecoveredJobs)
	}
}
