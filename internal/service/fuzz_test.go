package service

import "testing"

// FuzzJobSpec hammers the POST /jobs body decoder: it must never panic,
// and every spec it accepts must be internally consistent (defaults
// applied, exactly one input source, safe spool names) — the server
// spools accepted specs straight to disk.
func FuzzJobSpec(f *testing.F) {
	f.Add([]byte(`{"genome_dir":"/data/genome"}`))
	f.Add([]byte(`{"inputs":[{"name":"chr1","ref":">chr1\nACGT\n","aln":"r1\tACGT\tIIII\t1\t4\t+\tchr1\t1\n"}],"engine":"gsnp-cpu","window":256}`))
	f.Add([]byte(`{"genome_dir":"/x","engine":"soapsnp","format":"sam","compress":true,"quarantine":true}`))
	f.Add([]byte(`{"inputs":[{"name":"../escape","ref":"r","aln":"a"}]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(``))
	f.Add([]byte(`{"genome_dir":"/x"}{"genome_dir":"/y"}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := ParseJobSpec(data)
		if err != nil {
			return
		}
		if spec.Engine == "" || spec.Format == "" {
			t.Fatalf("accepted spec missing defaults: %+v", spec)
		}
		if (spec.GenomeDir == "") == (len(spec.Inputs) == 0) {
			t.Fatalf("accepted spec without exactly one input source: %+v", spec)
		}
		for _, in := range spec.Inputs {
			for _, c := range []byte("/\\\x00") {
				for i := 0; i < len(in.Name); i++ {
					if in.Name[i] == c {
						t.Fatalf("accepted unsafe input name %q", in.Name)
					}
				}
			}
			if in.Name == "" || in.Name == "." || in.Name == ".." {
				t.Fatalf("accepted unsafe input name %q", in.Name)
			}
			if in.Ref == "" || in.Aln == "" {
				t.Fatalf("accepted input without ref/aln: %+v", in)
			}
		}
		// Accepted specs map onto a valid engine configuration.
		o := spec.Options()
		if err := o.Validate(); err != nil {
			t.Fatalf("accepted spec fails option validation: %v", err)
		}
	})
}
