// Package service is the long-running multi-genome calling server behind
// cmd/gsnpd: it accepts genome-calling jobs over HTTP/JSON, decomposes
// each into per-chromosome tasks via internal/genomejob, shards all active
// jobs' tasks across one shared sched.Pool with round-robin fairness
// across jobs, and streams per-chromosome results back as they complete.
//
// The service inherits every guarantee the batch CLI has: per-chromosome
// output bytes are identical to a serial gsnp run at any worker count,
// failures are contained per chromosome by the pool's Policy (retries,
// deadlines, panic recovery), quarantine degradation is surfaced in the
// job status, and cancelling one job never perturbs another job's bytes.
package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"gsnp/internal/genomejob"
	"gsnp/internal/gsnp"
	"gsnp/internal/pipeline"
	"gsnp/internal/sched"
)

// Config configures a Server.
type Config struct {
	// Workers is the shared pool's size (<= 0 selects GOMAXPROCS).
	Workers int
	// Retries, RetryBackoff and TaskTimeout feed the pool's sched.Policy,
	// with the same semantics as the CLI flags of the same names.
	Retries      int
	RetryBackoff time.Duration
	TaskTimeout  time.Duration
	// SpoolDir is where uploaded inputs are materialised; empty selects a
	// fresh temporary directory.
	SpoolDir string
	// MaxBodyBytes caps POST /jobs bodies (0 = 256 MiB).
	MaxBodyBytes int64
	// Logf, when set, receives operational log lines.
	Logf func(format string, args ...any)
	// OnDequeue, when set, observes the shared pool's dispatch order
	// (job id, task index) — the deterministic fairness hook, forwarded
	// after the service's own bookkeeping.
	OnDequeue func(job string, index int)
}

// chromResult is one chromosome's in-memory outcome inside the pool.
type chromResult struct {
	output []byte
	res    genomejob.Result
}

// Server owns the shared worker pool and the job registry.
type Server struct {
	cfg      Config
	pool     *sched.Pool[chromResult, *gsnp.Arena]
	spool    string
	ownSpool bool

	mu       sync.Mutex
	jobs     map[string]*jobState
	seq      int
	draining bool
}

// errJobCancelled is the cancellation cause DELETE /jobs/{id} installs.
var errJobCancelled = errors.New("job cancelled by client")

// New builds the server and starts its worker pool.
func New(cfg Config) (*Server, error) {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 256 << 20
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	s := &Server{cfg: cfg, jobs: make(map[string]*jobState)}
	if cfg.SpoolDir != "" {
		if err := os.MkdirAll(cfg.SpoolDir, 0o755); err != nil {
			return nil, err
		}
		s.spool = cfg.SpoolDir
	} else {
		dir, err := os.MkdirTemp("", "gsnpd-spool-*")
		if err != nil {
			return nil, err
		}
		s.spool = dir
		s.ownSpool = true
	}
	pol := sched.Policy{
		Retries:         cfg.Retries,
		Backoff:         cfg.RetryBackoff,
		Timeout:         cfg.TaskTimeout,
		RecoverPanics:   true,
		ContinueOnError: true,
		RetryIf: func(err error) bool {
			var re pipeline.RecordError
			return !errors.As(err, &re)
		},
	}
	s.pool = sched.NewPool[chromResult, *gsnp.Arena](sched.PoolConfig{
		Workers:   cfg.Workers,
		Policy:    pol,
		OnDequeue: s.onDequeue,
	}, func(int) *gsnp.Arena { return gsnp.NewArena() })
	return s, nil
}

// jobState is the registry entry for one job. The pool delivers results to
// the collector goroutine, which appends stream records and updates the
// per-chromosome statuses; stream readers wait on notify.
type jobState struct {
	id      string
	spec    *JobSpec
	created time.Time
	units   []genomejob.Unit
	handle  *sched.Job[chromResult] // set once, published by closing ready
	ready   chan struct{}
	dir     string // per-job spool dir for uploaded inputs ("" for genome_dir jobs)

	mu        sync.Mutex
	chroms    []ChromStatus
	stream    []StreamRecord
	notify    chan struct{}
	state     string // queued | running | done | partial | failed | cancelled
	cancelled bool
	finished  bool
}

// Job/chromosome states reported over the API.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateOK        = "ok" // chromosome-level success
	StatePartial   = "partial"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
	StatePending   = "pending"
)

// ChromStatus is one chromosome's status inside a job, in input order.
type ChromStatus struct {
	Name        string `json:"name"`
	State       string `json:"state"`
	Sites       int    `json:"sites,omitempty"`
	Attempts    int    `json:"attempts,omitempty"`
	Quarantined int    `json:"quarantined,omitempty"`
	CalSkipped  int    `json:"cal_skipped,omitempty"`
	WallMS      int64  `json:"wall_ms,omitempty"`
	Error       string `json:"error,omitempty"`
}

// JobStatus is the GET /jobs/{id} document.
type JobStatus struct {
	ID          string        `json:"id"`
	State       string        `json:"state"`
	Created     time.Time     `json:"created"`
	Engine      string        `json:"engine"`
	Total       int           `json:"total"`
	Completed   int           `json:"completed"`
	Chromosomes []ChromStatus `json:"chromosomes"`
}

// StreamRecord is one line of GET /jobs/{id}/stream: a completed
// chromosome (in completion order, Index recovering input order), or the
// final job summary line (Final == true).
type StreamRecord struct {
	Job         string `json:"job"`
	Index       int    `json:"index"`
	Name        string `json:"name,omitempty"`
	State       string `json:"state"`
	Sites       int    `json:"sites,omitempty"`
	Quarantined int    `json:"quarantined,omitempty"`
	CalSkipped  int    `json:"cal_skipped,omitempty"`
	Attempts    int    `json:"attempts,omitempty"`
	WallMS      int64  `json:"wall_ms,omitempty"`
	Error       string `json:"error,omitempty"`
	// OutputB64 carries the chromosome's result bytes (text rows, or the
	// compressed container under Compress), base64-encoded by the JSON
	// marshaller.
	OutputB64 []byte `json:"output_b64,omitempty"`
	// Final marks the job summary line that terminates the stream.
	Final bool `json:"final,omitempty"`
}

// submit registers and enqueues one parsed job spec. Caller must not hold
// s.mu.
func (s *Server) submit(spec *JobSpec) (*jobState, error) {
	opts := spec.Options()

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	s.seq++
	id := fmt.Sprintf("j%d", s.seq)
	s.mu.Unlock()

	js := &jobState{
		//gsnplint:ignore determinism arrival timestamp is job metadata for listing order, never part of a result stream
		id: id, spec: spec, created: time.Now(),
		notify: make(chan struct{}),
		ready:  make(chan struct{}),
		state:  StateQueued,
	}
	fail := func(err error) (*jobState, error) {
		if js.dir != "" {
			os.RemoveAll(js.dir)
		}
		return nil, err
	}

	var units []genomejob.Unit
	var err error
	if spec.GenomeDir != "" {
		units, _, err = genomejob.Discover(spec.GenomeDir, opts)
	} else {
		js.dir = filepath.Join(s.spool, id)
		if err := spoolInputs(js.dir, spec); err != nil {
			return fail(err)
		}
		units, _, err = genomejob.Discover(js.dir, opts)
	}
	if err != nil {
		return fail(err)
	}
	if len(units) == 0 {
		return fail(fmt.Errorf("job has no runnable chromosomes"))
	}

	js.units = units
	js.chroms = make([]ChromStatus, len(units))
	tasks := make([]sched.LocalTask[chromResult, *gsnp.Arena], len(units))
	for i, u := range units {
		js.chroms[i] = ChromStatus{Name: u.Name, State: StatePending}
		u := u
		tasks[i] = sched.LocalTask[chromResult, *gsnp.Arena]{
			Name: u.Name,
			Run: func(ctx context.Context, arena *gsnp.Arena) (chromResult, error) {
				var buf bytes.Buffer
				res, err := genomejob.Call(ctx, opts, u, &buf, io.Discard, arena)
				if err != nil {
					return chromResult{}, err
				}
				return chromResult{output: buf.Bytes(), res: res}, nil
			},
		}
	}

	// The registry entry must exist before the pool can dispatch the first
	// task (the dequeue hook looks the job up by id); the handle is
	// published through the ready channel for anyone who raced the gap.
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return fail(ErrDraining)
	}
	s.jobs[id] = js
	s.mu.Unlock()

	handle, err := s.pool.Submit(id, tasks)
	if err != nil {
		close(js.ready)
		s.mu.Lock()
		delete(s.jobs, id)
		s.mu.Unlock()
		return fail(err)
	}
	js.handle = handle
	close(js.ready)
	go s.collect(js)
	s.cfg.Logf("job %s: submitted (%d chromosomes, engine %s)", id, len(units), spec.Engine)
	return js, nil
}

// spoolInputs writes a job's uploaded inputs as a genome directory, so the
// uploaded path and the genome-dir path share Discover and Call verbatim.
func spoolInputs(dir string, spec *JobSpec) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	alnExt := "." + spec.Format
	if spec.Format == "soap" {
		alnExt = ".soap"
	}
	type spoolFile struct{ name, content string }
	for _, in := range spec.Inputs {
		files := []spoolFile{
			{in.Name + ".fa", in.Ref},
			{in.Name + alnExt, in.Aln},
		}
		if in.SNP != "" {
			files = append(files, spoolFile{in.Name + ".snp", in.SNP})
		}
		for _, f := range files {
			if err := os.WriteFile(filepath.Join(dir, f.name), []byte(f.content), 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}

// onDequeue is the pool's dispatch hook: mark the chromosome (and its job)
// running. It runs under the pool's scheduling lock, so it must not call
// back into the pool.
func (s *Server) onDequeue(job string, index int) {
	s.mu.Lock()
	js := s.jobs[job]
	s.mu.Unlock()
	if js != nil {
		js.mu.Lock()
		if js.chroms[index].State == StatePending {
			js.chroms[index].State = StateRunning
		}
		if js.state == StateQueued {
			js.state = StateRunning
		}
		js.mu.Unlock()
	}
	if s.cfg.OnDequeue != nil {
		s.cfg.OnDequeue(job, index)
	}
}

// collect drains one job's pool results into its stream, then finalises
// the job and cleans up its spool directory.
func (s *Server) collect(js *jobState) {
	for r := range js.handle.Results() {
		rec := StreamRecord{
			Job: js.id, Index: r.Index, Name: r.Name,
			Attempts: r.Attempts, WallMS: r.Wall.Milliseconds(),
		}
		switch {
		case r.Skipped:
			rec.State = StateCancelled
			rec.Error = fmt.Sprint(r.Err)
		case r.Err != nil:
			rec.State = StateFailed
			rec.Error = r.Err.Error()
		case r.Value.res.Partial():
			rec.State = StatePartial
			rec.Sites = r.Value.res.Sites
			rec.Quarantined = len(r.Value.res.Quarantined)
			rec.CalSkipped = r.Value.res.CalSkipped
			rec.OutputB64 = r.Value.output
		default:
			rec.State = StateOK
			rec.Sites = r.Value.res.Sites
			rec.OutputB64 = r.Value.output
		}

		js.mu.Lock()
		cs := &js.chroms[r.Index]
		cs.State = rec.State
		cs.Sites = rec.Sites
		cs.Attempts = rec.Attempts
		cs.Quarantined = rec.Quarantined
		cs.CalSkipped = rec.CalSkipped
		cs.WallMS = rec.WallMS
		cs.Error = rec.Error
		js.stream = append(js.stream, rec)
		close(js.notify)
		js.notify = make(chan struct{})
		js.mu.Unlock()
	}

	js.mu.Lock()
	js.state = finalState(js)
	js.finished = true
	js.stream = append(js.stream, StreamRecord{
		Job: js.id, Index: -1, State: js.state, Final: true,
	})
	close(js.notify)
	js.mu.Unlock()
	if js.dir != "" {
		os.RemoveAll(js.dir)
	}
	s.cfg.Logf("job %s: %s", js.id, js.state)
}

// finalState derives the job-level outcome from its chromosomes. Called
// with js.mu held.
func finalState(js *jobState) string {
	var ok, partial, failed, cancelled int
	for _, c := range js.chroms {
		switch c.State {
		case StateOK:
			ok++
		case StatePartial:
			partial++
		case StateFailed:
			failed++
		case StateCancelled:
			cancelled++
		}
	}
	switch {
	case js.cancelled || cancelled > 0:
		return StateCancelled
	case failed == 0 && partial == 0:
		return StateDone
	case ok == 0 && partial == 0:
		return StateFailed
	default:
		return StatePartial
	}
}

// status snapshots a job's API document.
func (js *jobState) status() JobStatus {
	js.mu.Lock()
	defer js.mu.Unlock()
	st := JobStatus{
		ID: js.id, State: js.state, Created: js.created,
		Engine: js.spec.Engine, Total: len(js.chroms),
		Chromosomes: append([]ChromStatus(nil), js.chroms...),
	}
	for _, c := range st.Chromosomes {
		switch c.State {
		case StatePending, StateRunning:
		default:
			st.Completed++
		}
	}
	return st
}

// cancel implements DELETE /jobs/{id}.
func (s *Server) cancel(js *jobState) {
	<-js.ready
	if js.handle == nil {
		return // never launched
	}
	js.mu.Lock()
	already := js.finished || js.cancelled
	if !already {
		js.cancelled = true
	}
	js.mu.Unlock()
	if !already {
		js.handle.Cancel(errJobCancelled)
		s.cfg.Logf("job %s: cancel requested", js.id)
	}
}

// ErrDraining is returned to submissions while the server drains.
var ErrDraining = errors.New("server is draining")

// Drain stops accepting jobs and waits for every active job to finish (or
// ctx to expire, in which case remaining jobs are cancelled). It then
// closes the pool. Safe to call once during shutdown.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	jobs := make([]*jobState, 0, len(s.jobs))
	for _, js := range s.jobs {
		//gsnplint:ignore determinism drain awaits every job whatever the order; nothing observable depends on it
		jobs = append(jobs, js)
	}
	s.mu.Unlock()

	var err error
	for _, js := range jobs {
		<-js.ready
		if js.handle == nil {
			continue // never launched
		}
		select {
		case <-js.handle.Done():
		case <-ctx.Done():
			err = ctx.Err()
			s.pool.CancelAll(fmt.Errorf("drain deadline: %w", context.Cause(ctx)))
			for _, j := range jobs {
				<-j.ready
				if j.handle != nil {
					<-j.handle.Done()
				}
			}
		}
		if err != nil {
			break
		}
	}
	s.pool.Close()
	if s.ownSpool {
		os.RemoveAll(s.spool)
	}
	return err
}

// Close force-stops the server: every job is cancelled, then the pool
// drains. Used for tests and forced shutdown.
func (s *Server) Close() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.pool.CancelAll(errors.New("server shutting down"))
	s.pool.Close()
	if s.ownSpool {
		os.RemoveAll(s.spool)
	}
}
