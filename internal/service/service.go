// Package service is the long-running multi-genome calling server behind
// cmd/gsnpd: it accepts genome-calling jobs over HTTP/JSON, decomposes
// each into per-chromosome tasks via internal/genomejob, shards all active
// jobs' tasks across one shared sched.Pool with round-robin fairness
// across jobs, and streams per-chromosome results back as they complete.
//
// The service inherits every guarantee the batch CLI has: per-chromosome
// output bytes are identical to a serial gsnp run at any worker count,
// failures are contained per chromosome by the pool's Policy (retries,
// deadlines, panic recovery), quarantine degradation is surfaced in the
// job status, and cancelling one job never perturbs another job's bytes.
package service

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"gsnp/internal/checkpoint"
	"gsnp/internal/faults"
	"gsnp/internal/genomejob"
	"gsnp/internal/gsnp"
	"gsnp/internal/journal"
	"gsnp/internal/pipeline"
	"gsnp/internal/resultcache"
	"gsnp/internal/sched"
)

// Config configures a Server.
type Config struct {
	// Workers is the shared pool's size (<= 0 selects GOMAXPROCS).
	Workers int
	// Retries, RetryBackoff and TaskTimeout feed the pool's sched.Policy,
	// with the same semantics as the CLI flags of the same names.
	Retries      int
	RetryBackoff time.Duration
	TaskTimeout  time.Duration
	// SpoolDir is where uploaded inputs are materialised; empty selects a
	// fresh temporary directory. Ignored when JournalDir is set — the
	// journal owns the spool so uploads survive restarts.
	SpoolDir string
	// MaxBodyBytes caps POST /jobs bodies (0 = 256 MiB).
	MaxBodyBytes int64
	// JournalDir enables crash durability: every accepted job is
	// journaled (write-ahead, fsync'd) before it is acknowledged,
	// uploaded inputs spool under the journal so they survive restarts,
	// per-chromosome outputs are checkpointed durably as they complete,
	// and New replays the journal to re-enqueue jobs a crash
	// interrupted — completed chromosomes are skipped via checkpoint
	// resume and outputs stay byte-identical to an uninterrupted run.
	// Empty disables journaling (jobs die with the process, as before).
	JournalDir string
	// MaxQueued bounds admission: when that many admitted jobs are still
	// unfinished, new submissions are rejected with ErrQueueFull (HTTP
	// 429 + Retry-After) instead of growing the backlog without bound.
	// 0 = unlimited. Recovered jobs bypass the bound (they were already
	// admitted) but count against it.
	MaxQueued int
	// DiskFaults, when set, injects deterministic disk faults into the
	// journal's durable writes (testing; see internal/faults).
	DiskFaults *faults.Injector
	// Logf, when set, receives operational log lines.
	Logf func(format string, args ...any)
	// OnDequeue, when set, observes the shared pool's dispatch order
	// (job id, task index) — the deterministic fairness hook, forwarded
	// after the service's own bookkeeping. Cache hits and single-flight
	// joins never dequeue, so the hook also pins "zero engine work" in
	// the caching tests and benchmarks.
	OnDequeue func(job string, index int)
	// CacheBytes bounds the content-addressed result cache (0 selects
	// 256 MiB). Completed jobs' stream records are retained up to this
	// budget and replayed exactly for identical resubmissions.
	CacheBytes int64
	// CacheOff disables the result cache and single-flight dedup: every
	// submission executes on the pool.
	CacheOff bool
}

// chromResult is one chromosome's in-memory outcome inside the pool.
type chromResult struct {
	output []byte
	res    genomejob.Result
}

// cachedJob is one completed job's replayable output: its chromosome
// stream records (Job field cleared; rewritten to the new id on replay).
// Records are immutable once cached.
type cachedJob struct {
	records []StreamRecord
}

// recordOverhead is the per-record byte charge beyond the variable-size
// fields, approximating the struct + JSON framing so the cache budget
// tracks real memory, not just payload bytes.
const recordOverhead = 128

// size is the cache byte charge for a cached job.
func (cj cachedJob) size() int64 {
	n := int64(0)
	for _, r := range cj.records {
		n += recordOverhead + int64(len(r.OutputB64)) + int64(len(r.Name)) + int64(len(r.Error))
	}
	return n
}

// Server owns the shared worker pool and the job registry.
type Server struct {
	cfg      Config
	pool     *sched.Pool[chromResult, *gsnp.Arena]
	spool    string
	ownSpool bool

	// journal is the crash-durability WAL; nil unless Config.JournalDir
	// is set.
	journal *journal.Journal

	// cache and flights are nil when Config.CacheOff is set. cache maps a
	// job's content key to its recorded stream; flights tracks in-flight
	// executions so identical concurrent submissions share one run.
	cache   *resultcache.Cache[cachedJob]
	flights *resultcache.Flights[*jobState]

	mu       sync.Mutex
	jobs     map[string]*jobState
	seq      int
	draining bool
	// active counts admitted jobs that have not finalized — the
	// MaxQueued admission bound. Cache replays and single-flight
	// followers never count (they occupy no pool capacity).
	active int
	// recoveredN counts jobs re-enqueued from the journal this process.
	recoveredN uint64
}

// errJobCancelled is the cancellation cause DELETE /jobs/{id} installs.
var errJobCancelled = errors.New("job cancelled by client")

// ErrQueueFull is returned to submissions when MaxQueued unfinished jobs
// are already admitted; clients should back off and retry (HTTP 429).
var ErrQueueFull = errors.New("job queue is full")

// ErrJournal wraps journal-append failures: the one submission fails
// cleanly (HTTP 500) while the server keeps serving every other job.
var ErrJournal = errors.New("job journal write failed")

// New builds the server and starts its worker pool.
func New(cfg Config) (*Server, error) {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 256 << 20
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	s := &Server{cfg: cfg, jobs: make(map[string]*jobState)}
	if !cfg.CacheOff {
		if cfg.CacheBytes <= 0 {
			cfg.CacheBytes = 256 << 20
		}
		s.cfg.CacheBytes = cfg.CacheBytes
		s.cache = resultcache.New[cachedJob](cfg.CacheBytes)
		s.flights = resultcache.NewFlights[*jobState]()
	}
	if cfg.JournalDir != "" {
		var fault func(op string) error
		if cfg.DiskFaults != nil {
			fault = cfg.DiskFaults.DiskOp
		}
		jn, err := journal.Open(journal.Config{
			Dir: cfg.JournalDir, Fault: fault, Logf: cfg.Logf,
		})
		if err != nil {
			return nil, err
		}
		s.journal = jn
		s.seq = jn.MaxSeq()
	}
	switch {
	case s.journal != nil:
		// The journal owns the spool: uploaded inputs must survive a
		// restart, so they live in named per-job directories under the
		// journal rather than a process-lifetime temp dir.
		s.spool = filepath.Join(cfg.JournalDir, "spool")
	case cfg.SpoolDir != "":
		if err := os.MkdirAll(cfg.SpoolDir, 0o755); err != nil {
			return nil, err
		}
		s.spool = cfg.SpoolDir
	default:
		dir, err := os.MkdirTemp("", "gsnpd-spool-*")
		if err != nil {
			return nil, err
		}
		s.spool = dir
		s.ownSpool = true
	}
	pol := sched.Policy{
		Retries:         cfg.Retries,
		Backoff:         cfg.RetryBackoff,
		Timeout:         cfg.TaskTimeout,
		RecoverPanics:   true,
		ContinueOnError: true,
		RetryIf: func(err error) bool {
			var re pipeline.RecordError
			return !errors.As(err, &re)
		},
	}
	s.pool = sched.NewPool[chromResult, *gsnp.Arena](sched.PoolConfig{
		Workers:   cfg.Workers,
		Policy:    pol,
		OnDequeue: s.onDequeue,
	}, func(int) *gsnp.Arena { return gsnp.NewArena() })
	if s.journal != nil {
		s.recoverPending()
	}
	return s, nil
}

// jobState is the registry entry for one job. The pool delivers results to
// the collector goroutine, which appends stream records and updates the
// per-chromosome statuses; stream readers wait on notify.
type jobState struct {
	id      string
	spec    *JobSpec
	created time.Time
	units   []genomejob.Unit
	handle  *sched.Job[chromResult] // set once, published by closing ready
	ready   chan struct{}
	dir     string // per-job spool dir for uploaded inputs ("" for genome_dir jobs)

	// key is the job's content-addressed cache key ("" when caching is
	// off or an input could not be hashed). leader, when non-nil, is the
	// in-flight identical job this one mirrors instead of executing
	// (single-flight dedup); stopJoin detaches the mirror on cancel.
	// done closes when the job reaches a final state, whatever the path
	// (pool execution, cache replay, or mirrored stream).
	key      string
	leader   *jobState
	stopJoin chan struct{}
	done     chan struct{}

	// Journal state (zero-valued when the server runs without a
	// journal). journalSeq is the WAL sequence the job was accepted
	// under; workdir holds the durable per-chromosome outputs plus the
	// checkpoint manifest cp maintains; recovered marks a job re-enqueued
	// from the journal after a restart; counted marks a job charged
	// against the MaxQueued admission bound; taskUnit maps pool task
	// indices back to unit indices for recovered jobs that re-enqueued
	// only their unfinished chromosomes (nil = identity).
	journalSeq int
	workdir    string
	cp         *checkpoint.Writer
	recovered  bool
	counted    bool
	taskUnit   []int

	mu        sync.Mutex
	chroms    []ChromStatus
	stream    []StreamRecord
	notify    chan struct{}
	state     string // queued | running | done | partial | failed | cancelled | cached
	cancelled bool
	finished  bool
}

// Job/chromosome states reported over the API.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateOK        = "ok" // chromosome-level success
	StatePartial   = "partial"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
	StatePending   = "pending"
	// StateCached is the final state of a job served without pool work:
	// a cache replay of a prior identical job, or a single-flight join
	// whose leader completed cleanly. Clients distinguishing replays
	// from fresh runs key on it; per-chromosome records keep their
	// recorded states (always "ok" — only fully clean jobs are cached).
	StateCached = "cached"
)

// ChromStatus is one chromosome's status inside a job, in input order.
type ChromStatus struct {
	Name        string `json:"name"`
	State       string `json:"state"`
	Sites       int    `json:"sites,omitempty"`
	Attempts    int    `json:"attempts,omitempty"`
	Quarantined int    `json:"quarantined,omitempty"`
	CalSkipped  int    `json:"cal_skipped,omitempty"`
	WallMS      int64  `json:"wall_ms,omitempty"`
	Error       string `json:"error,omitempty"`
	// Recovered marks a chromosome served from the durable checkpoint
	// after a restart instead of re-executing.
	Recovered bool `json:"recovered,omitempty"`
}

// JobStatus is the GET /jobs/{id} document.
type JobStatus struct {
	ID          string        `json:"id"`
	State       string        `json:"state"`
	Created     time.Time     `json:"created"`
	Engine      string        `json:"engine"`
	Total       int           `json:"total"`
	Completed   int           `json:"completed"`
	Chromosomes []ChromStatus `json:"chromosomes"`
	// Recovered marks a job replayed from the journal after a restart:
	// its spec, inputs and already-completed chromosomes survived the
	// crash, and its output bytes are identical to an uninterrupted run.
	Recovered bool `json:"recovered,omitempty"`
}

// StreamRecord is one line of GET /jobs/{id}/stream: a completed
// chromosome (in completion order, Index recovering input order), or the
// final job summary line (Final == true).
type StreamRecord struct {
	Job         string `json:"job"`
	Index       int    `json:"index"`
	Name        string `json:"name,omitempty"`
	State       string `json:"state"`
	Sites       int    `json:"sites,omitempty"`
	Quarantined int    `json:"quarantined,omitempty"`
	CalSkipped  int    `json:"cal_skipped,omitempty"`
	Attempts    int    `json:"attempts,omitempty"`
	WallMS      int64  `json:"wall_ms,omitempty"`
	Error       string `json:"error,omitempty"`
	// OutputB64 carries the chromosome's result bytes (text rows, or the
	// compressed container under Compress), base64-encoded by the JSON
	// marshaller.
	OutputB64 []byte `json:"output_b64,omitempty"`
	// Final marks the job summary line that terminates the stream. Its
	// State is the job's final state; "cached" identifies a stream served
	// from the result cache or a single-flight join rather than a fresh
	// execution.
	Final bool `json:"final,omitempty"`
	// Recovered marks a record served from the durable checkpoint after
	// a restart (the chromosome was not re-executed; its bytes were
	// validated against the recorded digest), and on the Final record, a
	// job that was re-enqueued from the journal.
	Recovered bool `json:"recovered,omitempty"`
}

// submit registers and enqueues one parsed job spec. Caller must not hold
// s.mu.
func (s *Server) submit(spec *JobSpec) (*jobState, error) {
	opts := spec.Options()

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	// Admission backpressure: shed before spooling and hashing, not
	// after. The registration block below re-checks authoritatively.
	if s.cfg.MaxQueued > 0 && s.active >= s.cfg.MaxQueued {
		s.mu.Unlock()
		return nil, ErrQueueFull
	}
	s.seq++
	seq := s.seq
	id := fmt.Sprintf("j%d", seq)
	s.mu.Unlock()

	js := &jobState{
		//gsnplint:ignore determinism arrival timestamp is job metadata for listing order, never part of a result stream
		id: id, spec: spec, created: time.Now(),
		notify:   make(chan struct{}),
		ready:    make(chan struct{}),
		stopJoin: make(chan struct{}),
		done:     make(chan struct{}),
		state:    StateQueued,
	}
	fail := func(err error) (*jobState, error) {
		s.removeDir("job "+js.id+" spool dir", js.dir)
		return nil, err
	}

	var units []genomejob.Unit
	var err error
	if spec.GenomeDir != "" {
		units, _, err = genomejob.Discover(spec.GenomeDir, opts)
	} else {
		js.dir = filepath.Join(s.spool, id)
		if err := spoolInputs(js.dir, spec); err != nil {
			return fail(err)
		}
		units, _, err = genomejob.Discover(js.dir, opts)
	}
	if err != nil {
		return fail(err)
	}
	if len(units) == 0 {
		return fail(fmt.Errorf("job has no runnable chromosomes"))
	}

	js.units = units
	js.chroms = make([]ChromStatus, len(units))
	for i, u := range units {
		js.chroms[i] = ChromStatus{Name: u.Name, State: StatePending}
	}

	// Content digests feed two consumers: the result-cache key and the
	// journal's recorded input identity (what recovery re-validates
	// against). An unhashable input (e.g. a file racing deletion) makes
	// the job uncacheable and falls through to normal execution — unless
	// a journal must record it, in which case the job is refused: the
	// journal cannot promise to recover inputs it could not hash.
	var digests []string
	if s.cache != nil || s.journal != nil {
		var derr error
		digests, derr = genomejob.UnitDigests(units)
		if derr != nil {
			if s.journal != nil {
				return fail(fmt.Errorf("hashing inputs for the job journal: %w", derr))
			}
			s.cfg.Logf("job %s: uncacheable inputs: %v", id, derr)
			digests = nil
		}
	}

	// Write-ahead: the job is journaled durably before the client sees
	// its 202 — including before a cache replay, so every accepted job
	// is on disk. An append failure fails this one job cleanly (the
	// server keeps serving); nothing was acknowledged, nothing recovers.
	if s.journal != nil {
		if err := s.journalAccept(js, seq, spec, opts, digests); err != nil {
			return fail(fmt.Errorf("%w: %v", ErrJournal, err))
		}
	}

	// Content-addressed short-circuit: an exact prior result replays from
	// the cache with zero pool work; an identical job already executing
	// is joined (single-flight) instead of run twice.
	if s.cache != nil && digests != nil {
		js.key = jobKey(opts, digests)
		if cj, ok := s.cache.Get(js.key); ok {
			return s.serveCached(js, cj)
		}
		if leader, joined := s.flights.Begin(js.key, js); joined {
			return s.serveJoined(js, leader)
		}
		// This job is now the flight leader; every early exit below
		// must End the flight so identical waiters are not stranded.
	}
	failLeader := func(err error) (*jobState, error) {
		// A follower may have joined the flight already (draining can
		// land between its registration check and ours): finalise this
		// job — which also journals the terminal state and removes its
		// spool/work dirs — so the mirror resolves, then close the
		// flight.
		s.finalize(js, StateFailed)
		if js.key != "" {
			s.flights.End(js.key)
		}
		return nil, err
	}

	tasks := s.buildTasks(js, opts, units)

	// The registry entry must exist before the pool can dispatch the first
	// task (the dequeue hook looks the job up by id); the handle is
	// published through the ready channel for anyone who raced the gap.
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return failLeader(ErrDraining)
	}
	if s.cfg.MaxQueued > 0 && s.active >= s.cfg.MaxQueued {
		s.mu.Unlock()
		return failLeader(ErrQueueFull)
	}
	s.jobs[id] = js
	s.active++
	js.counted = true
	s.mu.Unlock()

	handle, err := s.pool.Submit(id, tasks)
	if err != nil {
		close(js.ready)
		s.mu.Lock()
		delete(s.jobs, id)
		s.mu.Unlock()
		// A concurrent identical submission may already be mirroring this
		// job; finalise (which also removes the spool dir) so followers
		// resolve instead of waiting forever, then close the flight.
		s.finalize(js, StateFailed)
		if js.key != "" {
			s.flights.End(js.key)
		}
		return nil, err
	}
	js.handle = handle
	close(js.ready)
	go s.collect(js)
	s.cfg.Logf("job %s: submitted (%d chromosomes, engine %s)", id, len(units), spec.Engine)
	return js, nil
}

// buildTasks maps units onto pool tasks. For recovered jobs the slice
// may cover only the unfinished units; js.taskUnit records the mapping
// back to unit indices.
func (s *Server) buildTasks(js *jobState, opts genomejob.Options, units []genomejob.Unit) []sched.LocalTask[chromResult, *gsnp.Arena] {
	tasks := make([]sched.LocalTask[chromResult, *gsnp.Arena], len(units))
	for i, u := range units {
		u := u
		tasks[i] = sched.LocalTask[chromResult, *gsnp.Arena]{
			Name: u.Name,
			Run: func(ctx context.Context, arena *gsnp.Arena) (chromResult, error) {
				var buf bytes.Buffer
				res, err := genomejob.Call(ctx, opts, u, &buf, io.Discard, arena)
				if err != nil {
					return chromResult{}, err
				}
				return chromResult{output: buf.Bytes(), res: res}, nil
			},
		}
	}
	return tasks
}

// journalAccept records the job in the WAL and prepares its durable work
// directory (checkpoint manifest + per-chromosome outputs). Uploaded
// input bodies are stripped from the journaled spec — they live in the
// journal-owned spool directory, which survives restarts.
func (s *Server) journalAccept(js *jobState, seq int, spec *JobSpec, opts genomejob.Options, digests []string) error {
	walSpec := *spec
	walSpec.Inputs = nil
	raw, err := json.Marshal(&walSpec)
	if err != nil {
		return err
	}
	e := journal.Entry{
		Seq: seq, Job: js.id, Spec: raw,
		Fingerprint: opts.Fingerprint(), Digests: digests,
		Created: js.created,
	}
	if js.dir != "" {
		e.Spool = js.id
	}
	if err := s.journal.Accept(e); err != nil {
		return err
	}
	js.journalSeq = seq
	if err := s.openWorkdir(js, opts); err != nil {
		// Accepted but unable to checkpoint: journal the failure so the
		// entry is not replayed, then refuse the job.
		if ferr := s.journal.Final(seq, js.id, StateFailed); ferr != nil {
			s.cfg.Logf("job %s: journal final after workdir failure: %v", js.id, ferr)
		}
		return err
	}
	return nil
}

// openWorkdir creates the job's durable work directory and checkpoint
// writer (resume loads any entries a previous incarnation completed).
func (s *Server) openWorkdir(js *jobState, opts genomejob.Options) error {
	js.workdir = s.journal.WorkDir(js.id)
	if err := os.MkdirAll(js.workdir, 0o755); err != nil {
		return err
	}
	cp, err := checkpoint.NewWriter(checkpoint.Path(js.workdir), opts.Fingerprint(), js.recovered)
	if err != nil {
		return err
	}
	js.cp = cp
	return nil
}

// jobKey derives the content-addressed cache key for a job: the
// output-shaping options fingerprint plus every unit's content digest, in
// Discover order. Two keys are equal exactly when the byte-identity
// guarantee says the results must be equal.
func jobKey(opts genomejob.Options, digests []string) string {
	h := sha256.New()
	fmt.Fprintln(h, opts.Fingerprint())
	for _, d := range digests {
		fmt.Fprintln(h, d)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// chromStatusOf projects a stream record onto the status table entry.
func chromStatusOf(rec StreamRecord) ChromStatus {
	return ChromStatus{
		Name: rec.Name, State: rec.State, Sites: rec.Sites,
		Attempts: rec.Attempts, Quarantined: rec.Quarantined,
		CalSkipped: rec.CalSkipped, WallMS: rec.WallMS, Error: rec.Error,
		Recovered: rec.Recovered,
	}
}

// removeDir removes a directory tree, logging (not discarding) removal
// failures: a leftover spool or work directory is leaked disk the
// operator should hear about, and the failure mode (EACCES, busy mounts)
// is actionable. An empty path is a no-op.
func (s *Server) removeDir(what, dir string) {
	if dir == "" {
		return
	}
	if err := os.RemoveAll(dir); err != nil {
		s.cfg.Logf("removing %s %s: %v", what, dir, err)
	}
}

// unitIndex maps a pool task index to the job's unit/chromosome index.
// Identity for fresh jobs; recovered jobs re-enqueue only their
// unfinished units, so the mapping goes through taskUnit.
func (js *jobState) unitIndex(task int) int {
	if js.taskUnit == nil {
		return task
	}
	return js.taskUnit[task]
}

// persistChrom durably records one cleanly completed chromosome: the
// output bytes land in the job's work directory via AtomicWrite, then the
// checkpoint manifest commits the entry (name → output + digest). Called
// before the stream record is published, so any chromosome a client has
// observed as completed is guaranteed to survive a crash and be skipped
// on recovery. Persistence failures degrade to re-execution on recovery
// (logged, never fatal): durability narrows, correctness holds.
func (s *Server) persistChrom(js *jobState, name string, out []byte, sites int) {
	if js.cp == nil {
		return
	}
	opts := js.spec.Options()
	path := filepath.Join(js.workdir, opts.OutName(name))
	if err := checkpoint.AtomicWrite(path, out); err != nil {
		s.cfg.Logf("job %s: checkpoint output %s: %v", js.id, name, err)
		return
	}
	if err := js.cp.Complete(name, path, sites); err != nil {
		s.cfg.Logf("job %s: checkpoint manifest %s: %v", js.id, name, err)
	}
}

// serveCached resolves a submission from a cache entry: the prior job's
// records are replayed under the new job id, the stream terminates with a
// "cached" final record, and the scheduler is never touched.
func (s *Server) serveCached(js *jobState, cj cachedJob) (*jobState, error) {
	js.chroms = make([]ChromStatus, len(cj.records))
	js.stream = make([]StreamRecord, 0, len(cj.records)+1)
	for _, rec := range cj.records {
		rec.Job = js.id
		js.chroms[rec.Index] = chromStatusOf(rec)
		js.stream = append(js.stream, rec)
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		// The job was already journaled (accept-before-consult): finalise
		// so a terminal record lands and the spool/work dirs are removed;
		// otherwise the unacknowledged job would replay after a restart.
		s.finalize(js, StateFailed)
		return nil, ErrDraining
	}
	s.jobs[js.id] = js
	s.mu.Unlock()
	close(js.ready)
	s.finalize(js, StateCached)
	return js, nil
}

// serveJoined attaches a submission to an identical in-flight job: the
// follower mirrors the leader's stream instead of executing.
func (s *Server) serveJoined(js, leader *jobState) (*jobState, error) {
	js.leader = leader
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		// Journaled before the consult: finalise so the WAL records a
		// terminal state instead of replaying an unacknowledged job.
		s.finalize(js, StateFailed)
		return nil, ErrDraining
	}
	s.jobs[js.id] = js
	s.mu.Unlock()
	close(js.ready)
	go s.follow(js)
	s.cfg.Logf("job %s: joined identical in-flight job %s (single-flight)", js.id, leader.id)
	return js, nil
}

// follow mirrors the leader's stream into a single-flight follower:
// replay of everything the leader has already emitted, then live follow
// until the leader finalises. A leader that completes cleanly resolves
// the follower as "cached"; any other leader outcome (partial, failed,
// cancelled) is mirrored verbatim. Cancelling the follower detaches the
// mirror without touching the leader.
func (s *Server) follow(js *jobState) {
	ld := js.leader
	next := 0
	final := ""
	for final == "" {
		ld.mu.Lock()
		recs := ld.stream[next:]
		finished := ld.finished
		notify := ld.notify
		ld.mu.Unlock()
		next += len(recs)
		for _, rec := range recs {
			if rec.Final {
				final = rec.State
				continue
			}
			rec.Job = js.id
			js.mu.Lock()
			js.chroms[rec.Index] = chromStatusOf(rec)
			js.stream = append(js.stream, rec)
			if js.state == StateQueued {
				js.state = StateRunning
			}
			close(js.notify)
			js.notify = make(chan struct{})
			js.mu.Unlock()
		}
		if final != "" || finished {
			break
		}
		select {
		case <-notify:
		case <-js.stopJoin:
			s.finalize(js, StateCancelled)
			return
		}
	}
	js.mu.Lock()
	cancelled := js.cancelled
	js.mu.Unlock()
	switch {
	case cancelled:
		s.finalize(js, StateCancelled)
	case final == StateDone:
		s.finalize(js, StateCached)
	case final == "":
		// The leader finalised without a final record: impossible today,
		// but resolve the follower rather than wedging it.
		s.finalize(js, StateFailed)
	default:
		s.finalize(js, final)
	}
}

// finalize moves a job to its final state: the terminating stream record
// is appended, waiters wake, the done channel closes, the terminal state
// is journaled (when a journal is active), and the job's spool/work
// directories are removed. Exactly one finalize happens per job, whatever
// path resolved it.
func (s *Server) finalize(js *jobState, state string) {
	// Durable-before-visible, and before done closes: Drain treats a
	// closed done channel as "this job is settled" and may then close the
	// journal, so the terminal record must already be on disk. If the
	// append fails the job stays pending in the WAL; its spool and work
	// dirs are kept so a restart re-runs it from its checkpoints instead
	// of finding the inputs gone.
	keepDirs := false
	if s.journal != nil && js.journalSeq != 0 {
		if err := s.journal.Final(js.journalSeq, js.id, state); err != nil {
			s.cfg.Logf("job %s: journal final: %v (job will re-run on recovery)", js.id, err)
			keepDirs = true
		}
	}
	js.mu.Lock()
	js.state = state
	js.finished = true
	js.stream = append(js.stream, StreamRecord{
		Job: js.id, Index: -1, State: state, Final: true, Recovered: js.recovered,
	})
	close(js.notify)
	js.mu.Unlock()
	close(js.done)
	if js.counted {
		s.mu.Lock()
		s.active--
		s.mu.Unlock()
	}
	if !keepDirs {
		s.removeDir("job "+js.id+" spool dir", js.dir)
		s.removeDir("job "+js.id+" work dir", js.workdir)
	}
	s.cfg.Logf("job %s: %s", js.id, state)
}

// spoolInputs writes a job's uploaded inputs as a genome directory, so the
// uploaded path and the genome-dir path share Discover and Call verbatim.
func spoolInputs(dir string, spec *JobSpec) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	alnExt := "." + genomejob.AlnExt(spec.Format)
	type spoolFile struct{ name, content string }
	for _, in := range spec.Inputs {
		files := []spoolFile{
			{in.Name + ".fa", in.Ref},
			{in.Name + alnExt, in.Aln},
		}
		if in.SNP != "" {
			files = append(files, spoolFile{in.Name + ".snp", in.SNP})
		}
		for _, f := range files {
			// The spool dir outlives a crash when journaling is on: recovery
			// replays the job from these files, so a torn spool input must
			// not be possible. AtomicWrite (temp + fsync + rename) leaves
			// either the whole input or nothing.
			if err := checkpoint.AtomicWrite(filepath.Join(dir, f.name), []byte(f.content)); err != nil {
				return err
			}
		}
	}
	return nil
}

// onDequeue is the pool's dispatch hook: mark the chromosome (and its job)
// running. It runs under the pool's scheduling lock, so it must not call
// back into the pool.
func (s *Server) onDequeue(job string, index int) {
	s.mu.Lock()
	js := s.jobs[job]
	s.mu.Unlock()
	if js != nil {
		// The pool dispatches task indices; recovered jobs enqueue only
		// their unfinished units, so map back to the chromosome index.
		index = js.unitIndex(index)
		js.mu.Lock()
		if js.chroms[index].State == StatePending {
			js.chroms[index].State = StateRunning
		}
		if js.state == StateQueued {
			js.state = StateRunning
		}
		js.mu.Unlock()
	}
	if s.cfg.OnDequeue != nil {
		s.cfg.OnDequeue(job, index)
	}
}

// collect drains one job's pool results into its stream, then finalises
// the job, records a cleanly completed run into the result cache, and
// closes the job's single-flight entry.
func (s *Server) collect(js *jobState) {
	for r := range js.handle.Results() {
		idx := js.unitIndex(r.Index)
		rec := StreamRecord{
			Job: js.id, Index: idx, Name: r.Name,
			Attempts: r.Attempts, WallMS: r.Wall.Milliseconds(),
		}
		switch {
		case r.Skipped:
			rec.State = StateCancelled
			rec.Error = fmt.Sprint(r.Err)
		case r.Err != nil:
			rec.State = StateFailed
			rec.Error = r.Err.Error()
		case r.Value.res.Partial():
			rec.State = StatePartial
			rec.Sites = r.Value.res.Sites
			rec.Quarantined = len(r.Value.res.Quarantined)
			rec.CalSkipped = r.Value.res.CalSkipped
			rec.OutputB64 = r.Value.output
		default:
			rec.State = StateOK
			rec.Sites = r.Value.res.Sites
			rec.OutputB64 = r.Value.output
		}

		// Durable-before-visible: a cleanly completed chromosome is
		// checkpointed before its stream record publishes, so any
		// completion a client has observed survives a crash and is
		// checkpoint-skipped on recovery. Partial results are never
		// checkpointed — they must recompute, same as the CLI's -resume.
		if rec.State == StateOK {
			s.persistChrom(js, rec.Name, rec.OutputB64, rec.Sites)
		}

		js.mu.Lock()
		js.chroms[idx] = chromStatusOf(rec)
		js.stream = append(js.stream, rec)
		close(js.notify)
		js.notify = make(chan struct{})
		js.mu.Unlock()
	}

	js.mu.Lock()
	state := finalState(js)
	js.mu.Unlock()
	s.finalize(js, state)

	if js.key == "" {
		return
	}
	// Only a fully clean job is cacheable: partial (quarantined windows,
	// skipped calibration records), failed and cancelled runs must always
	// recompute — their bytes are not the configuration's true result.
	// The Put lands before the flight closes, so an identical submission
	// arriving now either hits the cache or joins the still-open flight;
	// there is no window where it re-executes a completed clean run.
	if state == StateDone {
		js.mu.Lock()
		recs := make([]StreamRecord, 0, len(js.stream))
		for _, rec := range js.stream {
			if rec.Final {
				continue
			}
			rec.Job = "" // rewritten to the serving job's id on replay
			// A recovered job's checkpoint-replayed chromosomes carry the
			// Recovered marker; a cache replay of the finished result is a
			// clean serve and must not.
			rec.Recovered = false
			recs = append(recs, rec)
		}
		js.mu.Unlock()
		cj := cachedJob{records: recs}
		if !s.cache.Put(js.key, cj, cj.size()) {
			s.cfg.Logf("job %s: result (%d bytes) exceeds the cache budget, not cached", js.id, cj.size())
		}
	}
	s.flights.End(js.key)
}

// finalState derives the job-level outcome from its chromosomes. Called
// with js.mu held.
func finalState(js *jobState) string {
	var ok, partial, failed, cancelled int
	for _, c := range js.chroms {
		switch c.State {
		case StateOK:
			ok++
		case StatePartial:
			partial++
		case StateFailed:
			failed++
		case StateCancelled:
			cancelled++
		}
	}
	switch {
	case js.cancelled || cancelled > 0:
		return StateCancelled
	case failed == 0 && partial == 0:
		return StateDone
	case ok == 0 && partial == 0:
		return StateFailed
	default:
		return StatePartial
	}
}

// status snapshots a job's API document.
func (js *jobState) status() JobStatus {
	js.mu.Lock()
	defer js.mu.Unlock()
	st := JobStatus{
		ID: js.id, State: js.state, Created: js.created,
		Engine: js.spec.Engine, Total: len(js.chroms),
		Chromosomes: append([]ChromStatus(nil), js.chroms...),
		Recovered:   js.recovered,
	}
	for _, c := range st.Chromosomes {
		switch c.State {
		case StatePending, StateRunning:
		default:
			st.Completed++
		}
	}
	return st
}

// cancel implements DELETE /jobs/{id}. Cancelling a single-flight
// follower detaches its mirror without touching the leader; cancelling a
// leader resolves its followers through the mirrored cancelled records.
// Cached jobs are already final, so cancel is a no-op for them.
func (s *Server) cancel(js *jobState) {
	<-js.ready
	js.mu.Lock()
	already := js.finished || js.cancelled
	if !already {
		js.cancelled = true
	}
	leader := js.leader
	js.mu.Unlock()
	if already {
		return
	}
	if leader != nil {
		close(js.stopJoin)
		s.cfg.Logf("job %s: cancel requested (detached from %s)", js.id, leader.id)
		return
	}
	if js.handle == nil {
		return // never launched
	}
	js.handle.Cancel(errJobCancelled)
	s.cfg.Logf("job %s: cancel requested", js.id)
}

// Statz is the GET /statz document: serving-layer counters for the
// result cache and single-flight dedup, plus registry size. Cache stats
// are zero-valued when the cache is disabled.
type Statz struct {
	Jobs     int  `json:"jobs"`
	Draining bool `json:"draining"`
	// ActiveJobs counts admitted jobs that have not yet finalized — the
	// numerator of the MaxQueued admission bound. MaxQueued echoes the
	// configured bound (0 = unlimited).
	ActiveJobs int `json:"active_jobs"`
	MaxQueued  int `json:"max_queued,omitempty"`
	// JournalEnabled reports whether the crash-durability job journal is
	// active; RecoveredJobs counts jobs re-enqueued from it when this
	// process started.
	JournalEnabled bool   `json:"journal_enabled,omitempty"`
	RecoveredJobs  uint64 `json:"recovered_jobs,omitempty"`
	// CacheEnabled reports whether the result cache (and single-flight
	// dedup) is active.
	CacheEnabled bool `json:"cache_enabled"`
	// Cache carries hit/miss/eviction counters and byte occupancy.
	Cache resultcache.Stats `json:"cache"`
	// SingleFlightJoins counts submissions served by joining an identical
	// in-flight job instead of executing.
	SingleFlightJoins uint64 `json:"single_flight_joins"`
}

// Statz snapshots the serving counters.
func (s *Server) Statz() Statz {
	s.mu.Lock()
	st := Statz{
		Jobs: len(s.jobs), Draining: s.draining,
		ActiveJobs: s.active, MaxQueued: s.cfg.MaxQueued,
		JournalEnabled: s.journal != nil, RecoveredJobs: s.recoveredN,
	}
	s.mu.Unlock()
	if s.cache != nil {
		st.CacheEnabled = true
		st.Cache = s.cache.Stats()
		st.SingleFlightJoins = s.flights.Joins()
	}
	return st
}

// ErrDraining is returned to submissions while the server drains.
var ErrDraining = errors.New("server is draining")

// Drain stops accepting jobs and waits for every active job to finish (or
// ctx to expire, in which case remaining jobs are cancelled). It then
// closes the pool. Safe to call once during shutdown.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	jobs := make([]*jobState, 0, len(s.jobs))
	for _, js := range s.jobs {
		//gsnplint:ignore determinism drain awaits every job whatever the order; nothing observable depends on it
		jobs = append(jobs, js)
	}
	s.mu.Unlock()

	var err error
	for _, js := range jobs {
		// done closes on every resolution path — pool execution, cache
		// replay, mirrored single-flight stream — so drain needs no
		// per-kind handling. (A follower resolves when its leader does;
		// the leader is in the same snapshot.)
		<-js.ready
		select {
		case <-js.done:
		case <-ctx.Done():
			err = ctx.Err()
			s.pool.CancelAll(fmt.Errorf("drain deadline: %w", context.Cause(ctx)))
			for _, j := range jobs {
				<-j.ready
				<-j.done
			}
		}
		if err != nil {
			break
		}
	}
	s.pool.Close()
	s.closeJournal()
	if s.ownSpool {
		s.removeDir("spool dir", s.spool)
	}
	return err
}

// closeJournal closes the WAL (idempotent; logs rather than discards the
// close error — an unsynced final record is operator-relevant).
func (s *Server) closeJournal() {
	if s.journal == nil {
		return
	}
	if err := s.journal.Close(); err != nil {
		s.cfg.Logf("journal close: %v", err)
	}
}

// Close force-stops the server: every job is cancelled, then the pool
// drains. Used for tests and forced shutdown.
func (s *Server) Close() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.pool.CancelAll(errors.New("server shutting down"))
	s.pool.Close()
	s.closeJournal()
	if s.ownSpool {
		s.removeDir("spool dir", s.spool)
	}
}
