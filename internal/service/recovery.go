package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"gsnp/internal/checkpoint"
	"gsnp/internal/genomejob"
	"gsnp/internal/journal"
)

// recoverPending replays the journal after a restart: every job a
// previous process accepted but never finalized is re-validated against
// its recorded input digests and re-enqueued, with chromosomes the crash
// already completed served straight from their durable checkpoints. It
// runs from New, after the pool exists and before the HTTP listener can
// accept anything, so recovered ids never race fresh submissions.
func (s *Server) recoverPending() {
	pending := s.journal.Pending()
	keep := make(map[string]bool, len(pending))
	for _, e := range pending {
		keep[e.Job] = true
	}
	// Spool/work dirs of jobs that are not pending are debris (finalized
	// right before the crash, or never fully admitted): sweep them first.
	s.journal.Sweep(keep)
	for _, e := range pending {
		s.recoverJob(e)
	}
	if len(pending) > 0 {
		s.cfg.Logf("journal: recovered %d interrupted job(s)", len(pending))
	}
}

// recoverJob re-enqueues one journaled job. The recorded spec is
// re-validated, the inputs are re-hashed against the journaled digests
// (drifted inputs fail the job rather than silently producing different
// bytes), and checkpointed chromosomes are streamed as already-complete
// records — their bytes digest-verified — while the rest go back to the
// pool. Byte identity with an uninterrupted run is preserved on every
// path.
func (s *Server) recoverJob(e journal.Entry) {
	js := &jobState{
		id: e.Job, created: e.Created,
		notify:     make(chan struct{}),
		ready:      make(chan struct{}),
		stopJoin:   make(chan struct{}),
		done:       make(chan struct{}),
		state:      StateQueued,
		journalSeq: e.Seq,
		recovered:  true,
	}

	var spec JobSpec
	if err := json.Unmarshal(e.Spec, &spec); err != nil {
		s.failRecovered(js, fmt.Errorf("journaled spec: %w", err))
		return
	}
	js.spec = &spec
	// Uploaded input bodies were stripped from the journaled spec — the
	// spool directory is their durable home — so only the input-independent
	// option invariants can be (and need to be) re-checked.
	if err := spec.validateOptions(); err != nil {
		s.failRecovered(js, fmt.Errorf("journaled spec: %w", err))
		return
	}
	opts := spec.Options()
	if got := opts.Fingerprint(); got != e.Fingerprint {
		s.failRecovered(js, fmt.Errorf("fingerprint drift: journaled %q, recomputed %q", e.Fingerprint, got))
		return
	}

	dir := spec.GenomeDir
	if e.Spool != "" {
		js.dir = s.journal.SpoolDir(e.Spool)
		dir = js.dir
	}
	if dir == "" {
		s.failRecovered(js, fmt.Errorf("journaled spec names neither a genome dir nor a spool"))
		return
	}
	units, _, err := genomejob.Discover(dir, opts)
	if err != nil {
		s.failRecovered(js, err)
		return
	}
	digests, err := genomejob.UnitDigests(units)
	if err != nil {
		s.failRecovered(js, fmt.Errorf("re-hashing inputs: %w", err))
		return
	}
	if len(digests) != len(e.Digests) {
		s.failRecovered(js, fmt.Errorf("input set changed: %d chromosomes journaled, %d found", len(e.Digests), len(units)))
		return
	}
	for i, d := range digests {
		if d != e.Digests[i] {
			s.failRecovered(js, fmt.Errorf("input %s changed since the job was journaled", units[i].Name))
			return
		}
	}

	// Resume the checkpoint manifest. A corrupt or mismatched manifest
	// costs durability, not correctness: wipe it and recompute everything.
	if err := s.openWorkdir(js, opts); err != nil {
		s.cfg.Logf("job %s: recovery checkpoint: %v (recomputing all chromosomes)", js.id, err)
		if rerr := os.Remove(checkpoint.Path(s.journal.WorkDir(js.id))); rerr != nil && !os.IsNotExist(rerr) {
			s.failRecovered(js, fmt.Errorf("removing bad checkpoint: %w", rerr))
			return
		}
		if err := s.openWorkdir(js, opts); err != nil {
			s.failRecovered(js, err)
			return
		}
	}

	// Partition units: checkpointed chromosomes replay from their durable
	// outputs (Done re-verifies the recorded digest before we trust the
	// bytes); the rest re-enqueue, with taskUnit mapping pool task indices
	// back to chromosome indices.
	js.units = units
	js.chroms = make([]ChromStatus, len(units))
	var remaining []genomejob.Unit
	var taskUnit []int
	for i, u := range units {
		js.chroms[i] = ChromStatus{Name: u.Name, State: StatePending}
		ce, ok := js.cp.Done(u.Name)
		if ok {
			out, rerr := os.ReadFile(filepath.Join(js.workdir, ce.Output))
			if rerr == nil {
				rec := StreamRecord{
					Job: js.id, Index: i, Name: u.Name, State: StateOK,
					Sites: ce.Sites, OutputB64: out, Recovered: true,
				}
				js.chroms[i] = chromStatusOf(rec)
				js.stream = append(js.stream, rec)
				continue
			}
			s.cfg.Logf("job %s: checkpointed output %s unreadable (%v), recomputing", js.id, u.Name, rerr)
		}
		remaining = append(remaining, u)
		taskUnit = append(taskUnit, i)
	}
	js.taskUnit = taskUnit

	// A recovered job that still has work to run is a normal execution of
	// its content key: register it as a flight leader so its completed
	// result lands in the cache (a resubmission of the same inputs after
	// recovery is a hit, not a recompute). Jobs served fully from
	// checkpoints skip this — they never pass through collect, which is
	// where the flight is closed. Two identical journaled jobs can race
	// here; the loser simply runs uncached rather than joining mid-recovery.
	if s.cache != nil && len(remaining) > 0 {
		key := jobKey(opts, digests)
		if _, joined := s.flights.Begin(key, js); !joined {
			js.key = key
		}
	}

	s.mu.Lock()
	s.jobs[js.id] = js
	s.active++
	js.counted = true
	s.recoveredN++
	s.mu.Unlock()

	if len(remaining) == 0 {
		close(js.ready)
		s.cfg.Logf("job %s: recovered fully from checkpoints (%d chromosomes)", js.id, len(units))
		s.finalize(js, StateDone)
		return
	}
	handle, err := s.pool.Submit(js.id, s.buildTasks(js, opts, remaining))
	if err != nil {
		close(js.ready)
		s.mu.Lock()
		delete(s.jobs, js.id)
		s.mu.Unlock()
		s.finalize(js, StateFailed)
		if js.key != "" {
			s.flights.End(js.key)
		}
		s.cfg.Logf("job %s: recovery re-enqueue: %v", js.id, err)
		return
	}
	js.handle = handle
	close(js.ready)
	go s.collect(js)
	s.cfg.Logf("job %s: recovered (%d of %d chromosomes from checkpoints, %d re-enqueued)",
		js.id, len(units)-len(remaining), len(units), len(remaining))
}

// failRecovered registers a journaled job the service could not recover
// and finalizes it as failed: the failure is visible over the API (and
// journaled terminally) instead of the job silently vanishing from the
// WAL's pending set.
func (s *Server) failRecovered(js *jobState, err error) {
	s.cfg.Logf("job %s: recovery failed: %v", js.id, err)
	if js.spec == nil {
		js.spec = &JobSpec{}
	}
	js.mu.Lock()
	for i := range js.chroms {
		if js.chroms[i].State == StatePending {
			js.chroms[i].State = StateFailed
			js.chroms[i].Error = "job recovery failed"
		}
	}
	js.mu.Unlock()
	s.mu.Lock()
	s.jobs[js.id] = js
	s.recoveredN++
	s.mu.Unlock()
	close(js.ready)
	s.finalize(js, StateFailed)
}
