package service

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"sort"

	"gsnp/internal/sched"
)

// Handler returns the service's HTTP API:
//
//	POST   /jobs              submit a job (JobSpec body) -> 202 + JobStatus
//	GET    /jobs              list job summaries
//	GET    /jobs/{id}         one job's status
//	GET    /jobs/{id}/stream  NDJSON stream of per-chromosome results as
//	                          they complete, terminated by a Final record;
//	                          attaches late without losing records
//	DELETE /jobs/{id}         cancel the job -> 202 + JobStatus
//	GET    /healthz           liveness + drain state + cache occupancy
//	GET    /statz             serving counters: cache hits/misses/
//	                          evictions, byte occupancy, single-flight
//	                          joins
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /statz", s.handleStatz)
	return mux
}

// writeJSON writes v as the response body.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

// apiError is the JSON error document.
type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, apiError{Error: err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, err)
		return
	}
	spec, err := ParseJobSpec(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	js, err := s.submit(spec)
	if err != nil {
		code := http.StatusBadRequest
		switch {
		case errors.Is(err, ErrDraining) || errors.Is(err, sched.ErrPoolClosed):
			code = http.StatusServiceUnavailable
			w.Header().Set("Retry-After", retryAfter)
		case errors.Is(err, ErrQueueFull):
			// Admission backpressure: the queue bound is hit, the request
			// itself was fine — tell the client when to come back.
			code = http.StatusTooManyRequests
			w.Header().Set("Retry-After", retryAfter)
		case errors.Is(err, ErrJournal):
			// Durability could not be guaranteed for this job; the server
			// itself keeps serving.
			code = http.StatusInternalServerError
		}
		writeError(w, code, err)
		return
	}
	writeJSON(w, http.StatusAccepted, js.status())
}

// retryAfter is the Retry-After header value (seconds) sent with 503
// (draining) and 429 (queue full) responses: both conditions clear on the
// order of job completions, not instantly, so clients should pause rather
// than hammer.
const retryAfter = "1"

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *jobState {
	id := r.PathValue("id")
	s.mu.Lock()
	js := s.jobs[id]
	s.mu.Unlock()
	if js == nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such job " + id})
	}
	return js
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	if js := s.lookup(w, r); js != nil {
		writeJSON(w, http.StatusOK, js.status())
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	all := make([]*jobState, 0, len(s.jobs))
	for _, js := range s.jobs {
		//gsnplint:ignore determinism the listing is sorted by Created below; status() must run outside s.mu, so the sort happens on the derived list
		all = append(all, js)
	}
	s.mu.Unlock()
	list := make([]JobStatus, 0, len(all))
	for _, js := range all {
		list = append(list, js.status())
	}
	sort.Slice(list, func(i, j int) bool { return list[i].Created.Before(list[j].Created) })
	writeJSON(w, http.StatusOK, map[string]any{"jobs": list})
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	js := s.lookup(w, r)
	if js == nil {
		return
	}
	s.cancel(js)
	writeJSON(w, http.StatusAccepted, js.status())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	st := s.Statz()
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok", "draining": st.Draining, "jobs": st.Jobs,
		"cache_enabled": st.CacheEnabled, "cache_bytes": st.Cache.Bytes,
	})
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Statz())
}

// handleStream replays the job's stream records from the beginning, then
// follows live completions until the Final record. Every connected client
// gets the full record sequence regardless of when it attached, and a
// client disconnect never affects the job (results are collected by the
// server, not the response writer).
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	js := s.lookup(w, r)
	if js == nil {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)

	next := 0
	for {
		js.mu.Lock()
		recs := js.stream[next:]
		finished := js.finished
		notify := js.notify
		js.mu.Unlock()

		for _, rec := range recs {
			if err := enc.Encode(rec); err != nil {
				return // client went away
			}
		}
		next += len(recs)
		if flusher != nil && len(recs) > 0 {
			flusher.Flush()
		}
		if finished && len(recs) == 0 {
			return
		}
		if finished {
			continue // pick up records appended alongside the final state
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		}
	}
}
