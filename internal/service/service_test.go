package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"gsnp/internal/bayes"
	"gsnp/internal/genomejob"
	"gsnp/internal/seqsim"
	"gsnp/internal/snpio"
)

// writeGenomeDir materialises synthetic chromosomes as a genome directory
// (the <chr>.fa/<chr>.soap/<chr>.snp production layout), mirroring
// cmd/gsnp-gen.
func writeGenomeDir(t testing.TB, dir string, specs []seqsim.ChromosomeSpec) {
	t.Helper()
	for _, spec := range specs {
		ds := seqsim.BuildDataset(spec)
		write := func(name string, fn func(f *os.File) error) {
			f, err := os.Create(filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}
			if err := fn(f); err != nil {
				f.Close()
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
		}
		write(spec.Name+".fa", func(f *os.File) error {
			return snpio.WriteFASTA(f, snpio.FASTARecord{Name: spec.Name, Seq: ds.Ref.Seq})
		})
		write(spec.Name+".soap", func(f *os.File) error {
			return snpio.WriteSOAP(f, spec.Name, ds.Reads)
		})
		known := snpio.KnownSNPs{}
		for _, v := range ds.Diploid.Variants {
			if !v.Known {
				continue
			}
			a1, a2 := v.Genotype.Alleles()
			rec := &bayes.KnownSNP{Validated: true}
			rec.Freq[a1] += 0.5
			rec.Freq[a2] += 0.5
			known[v.Pos] = rec
		}
		write(spec.Name+".snp", func(f *os.File) error {
			return snpio.WriteKnownSNPs(f, spec.Name, known)
		})
	}
}

// testSpecs builds nChrom small chromosomes with distinct sizes/seeds.
func testSpecs(nChrom, baseSites int, seed int64) []seqsim.ChromosomeSpec {
	specs := make([]seqsim.ChromosomeSpec, nChrom)
	for i := range specs {
		specs[i] = seqsim.ChromosomeSpec{
			Name:         fmt.Sprintf("chr%02d", i+1),
			Length:       baseSites + 251*i,
			Depth:        8,
			MaskFraction: 0.1,
			Seed:         seed + int64(i),
		}
	}
	return specs
}

// serialBaseline runs every unit of a genome dir through genomejob.Call
// serially — the byte-identity reference the service must reproduce at
// any worker count.
func serialBaseline(t testing.TB, dir string, opts genomejob.Options) map[string][]byte {
	t.Helper()
	units, _, err := genomejob.Discover(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]byte, len(units))
	for _, u := range units {
		var buf bytes.Buffer
		if _, err := genomejob.Call(context.Background(), opts, u, &buf, io.Discard, nil); err != nil {
			t.Fatalf("serial baseline %s: %v", u.Name, err)
		}
		out[u.Name] = buf.Bytes()
	}
	return out
}

// postJob submits a job spec and returns its id.
func postJob(t testing.TB, ts *httptest.Server, spec map[string]any) string {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs: %d %s", resp.StatusCode, data)
	}
	var st JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.Total == 0 {
		t.Fatalf("job status missing id/total: %s", data)
	}
	return st.ID
}

// readStream consumes /jobs/{id}/stream to the final record, returning
// per-chromosome records by name plus the final job state.
func readStream(t testing.TB, ts *httptest.Server, id string) (map[string]StreamRecord, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET stream: %d", resp.StatusCode)
	}
	recs := make(map[string]StreamRecord)
	dec := json.NewDecoder(resp.Body)
	for {
		var rec StreamRecord
		if err := dec.Decode(&rec); err != nil {
			t.Fatalf("stream %s ended without a final record: %v", id, err)
		}
		if rec.Final {
			return recs, rec.State
		}
		if rec.Job != id {
			t.Fatalf("stream %s delivered record for job %s", id, rec.Job)
		}
		recs[rec.Name] = rec
	}
}

func getStatus(t testing.TB, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func newTestServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.SpoolDir = filepath.Join(t.TempDir(), "spool")
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts
}

// TestServiceEndToEndByteIdentity is the acceptance scenario: two
// concurrently submitted jobs over genome directories must stream
// per-chromosome outputs byte-identical to serial runs, at worker counts
// 1 and 4.
func TestServiceEndToEndByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("service e2e in -short mode")
	}
	opts := genomejob.Options{Engine: "gsnp-cpu", Format: "soap", Window: 256}
	dirA, dirB := t.TempDir(), t.TempDir()
	writeGenomeDir(t, dirA, testSpecs(6, 1500, 41))
	writeGenomeDir(t, dirB, testSpecs(2, 1200, 97))
	baseA := serialBaseline(t, dirA, opts)
	baseB := serialBaseline(t, dirB, opts)

	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			_, ts := newTestServer(t, Config{Workers: workers})

			// Overlapping submissions: B is enqueued while A is running.
			idA := postJob(t, ts, map[string]any{"genome_dir": dirA, "engine": "gsnp-cpu", "window": 256})
			idB := postJob(t, ts, map[string]any{"genome_dir": dirB, "engine": "gsnp-cpu", "window": 256})

			var wg sync.WaitGroup
			streams := make([]map[string]StreamRecord, 2)
			states := make([]string, 2)
			for i, id := range []string{idA, idB} {
				wg.Add(1)
				go func(i int, id string) {
					defer wg.Done()
					streams[i], states[i] = readStream(t, ts, id)
				}(i, id)
			}
			wg.Wait()

			for i, base := range []map[string][]byte{baseA, baseB} {
				if states[i] != StateDone {
					t.Fatalf("job %d final state %q, want done", i, states[i])
				}
				if len(streams[i]) != len(base) {
					t.Fatalf("job %d streamed %d chromosomes, want %d", i, len(streams[i]), len(base))
				}
				for name, want := range base {
					rec, ok := streams[i][name]
					if !ok {
						t.Fatalf("job %d: no stream record for %s", i, name)
					}
					if rec.State != StateOK {
						t.Fatalf("job %d %s: state %q (%s)", i, name, rec.State, rec.Error)
					}
					if !bytes.Equal(rec.OutputB64, want) {
						t.Errorf("job %d %s: streamed bytes differ from serial run", i, name)
					}
				}
			}

			// Status endpoint agrees once the stream is done.
			st := getStatus(t, ts, idA)
			if st.State != StateDone || st.Completed != st.Total {
				t.Errorf("job A status %q %d/%d, want done", st.State, st.Completed, st.Total)
			}
		})
	}
}

// TestServiceCancelIsolation: cancelling one job never perturbs a
// concurrent job's bytes. A long job is cancelled mid-flight; the small
// job must still stream byte-identical results and finish done.
func TestServiceCancelIsolation(t *testing.T) {
	if testing.Short() {
		t.Skip("service e2e in -short mode")
	}
	opts := genomejob.Options{Engine: "gsnp-cpu", Format: "soap", Window: 256}
	dirLong, dirSmall := t.TempDir(), t.TempDir()
	// The long job must still be mid-flight when the DELETE lands (the
	// test asserts at least one chromosome resolves cancelled), so make
	// it comfortably longer than the submit+cancel round trips.
	writeGenomeDir(t, dirLong, testSpecs(16, 5000, 7))
	writeGenomeDir(t, dirSmall, testSpecs(1, 1500, 301))
	baseSmall := serialBaseline(t, dirSmall, opts)

	_, ts := newTestServer(t, Config{Workers: 1})
	idLong := postJob(t, ts, map[string]any{"genome_dir": dirLong, "engine": "gsnp-cpu", "window": 256})

	// Wait for the long job's first chromosome to complete, then submit
	// the small job and cancel the long one.
	resp, err := http.Get(ts.URL + "/jobs/" + idLong + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(resp.Body)
	var first StreamRecord
	if err := dec.Decode(&first); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	idSmall := postJob(t, ts, map[string]any{"genome_dir": dirSmall, "engine": "gsnp-cpu", "window": 256})
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+idLong, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE: %d", dresp.StatusCode)
	}

	// The small job's bytes are unaffected by the sibling cancellation.
	recs, state := readStream(t, ts, idSmall)
	if state != StateDone {
		t.Fatalf("small job state %q, want done", state)
	}
	for name, want := range baseSmall {
		if !bytes.Equal(recs[name].OutputB64, want) {
			t.Errorf("%s: small job bytes perturbed by sibling cancel", name)
		}
	}

	// The long job resolves as cancelled with skipped chromosomes.
	recsLong, stateLong := readStream(t, ts, idLong)
	if stateLong != StateCancelled {
		t.Fatalf("long job state %q, want cancelled", stateLong)
	}
	var cancelledN int
	for _, r := range recsLong {
		if r.State == StateCancelled {
			cancelledN++
		}
	}
	if cancelledN == 0 {
		t.Error("no chromosome reported cancelled on the long job")
	}
	// Completed chromosomes that did stream are still byte-correct.
	baseLong := serialBaseline(t, dirLong, opts)
	for name, r := range recsLong {
		if r.State == StateOK && !bytes.Equal(r.OutputB64, baseLong[name]) {
			t.Errorf("%s: completed-before-cancel bytes differ from serial run", name)
		}
	}
}

// TestServiceUploadedInputs exercises the inline ref/aln upload path: the
// spooled job must produce the same bytes as a direct run over the same
// data.
func TestServiceUploadedInputs(t *testing.T) {
	if testing.Short() {
		t.Skip("service e2e in -short mode")
	}
	opts := genomejob.Options{Engine: "gsnp-cpu", Format: "soap", Window: 256}
	dir := t.TempDir()
	writeGenomeDir(t, dir, testSpecs(2, 1400, 55))
	base := serialBaseline(t, dir, opts)

	var inputs []map[string]any
	for _, name := range []string{"chr01", "chr02"} {
		ref, err := os.ReadFile(filepath.Join(dir, name+".fa"))
		if err != nil {
			t.Fatal(err)
		}
		aln, err := os.ReadFile(filepath.Join(dir, name+".soap"))
		if err != nil {
			t.Fatal(err)
		}
		snp, err := os.ReadFile(filepath.Join(dir, name+".snp"))
		if err != nil {
			t.Fatal(err)
		}
		inputs = append(inputs, map[string]any{
			"name": name, "ref": string(ref), "aln": string(aln), "snp": string(snp),
		})
	}
	srv, ts := newTestServer(t, Config{Workers: 2})
	id := postJob(t, ts, map[string]any{"inputs": inputs, "engine": "gsnp-cpu", "window": 256})
	recs, state := readStream(t, ts, id)
	if state != StateDone {
		t.Fatalf("uploaded job state %q, want done", state)
	}
	for name, want := range base {
		rec := recs[name]
		if !bytes.Equal(rec.OutputB64, want) {
			t.Errorf("%s: uploaded-input bytes differ from direct run", name)
		}
	}
	// The spool directory is cleaned up once the job finishes.
	entries, err := os.ReadDir(srv.spool)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("spool dir not cleaned after job: %v", entries)
	}
}

// TestServiceDrain: draining finishes active jobs, rejects new ones with
// 503, and Drain returns only when everything has resolved.
func TestServiceDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("service e2e in -short mode")
	}
	dir := t.TempDir()
	writeGenomeDir(t, dir, testSpecs(3, 1500, 11))

	srv, ts := newTestServer(t, Config{Workers: 1})
	id := postJob(t, ts, map[string]any{"genome_dir": dir, "engine": "gsnp-cpu", "window": 256})

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	drained := make(chan error, 1)
	go func() { drained <- srv.Drain(ctx) }()

	// New submissions are rejected while draining. Drain may still be
	// snapshotting, so poll briefly for the flag to take effect.
	deadline := time.Now().Add(5 * time.Second)
	for {
		body, _ := json.Marshal(map[string]any{"genome_dir": dir})
		resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			if resp.Header.Get("Retry-After") == "" {
				t.Error("503 draining response missing Retry-After")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("submission during drain: %d %s, want 503", resp.StatusCode, data)
		}
		time.Sleep(10 * time.Millisecond)
	}

	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	// The active job finished rather than being cancelled.
	st := getStatus(t, ts, id)
	if st.State != StateDone {
		t.Fatalf("job state after drain %q, want done", st.State)
	}
}

// TestServiceBadSpecs: malformed submissions fail with 400 and never
// create a job.
func TestServiceBadSpecs(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for _, body := range []string{
		``,
		`{`,
		`{"engine":"gsnp-cpu"}`, // neither genome_dir nor inputs
		`{"genome_dir":"/x","inputs":[{"name":"a"}]}`,         // both
		`{"genome_dir":"/x","engine":"warp"}`,                 // unknown engine
		`{"genome_dir":"/x","unknown_field":1}`,               // unknown field
		`{"inputs":[{"name":"../evil","ref":"r","aln":"a"}]}`, // path escape
		`{"inputs":[{"name":"a","ref":"r"}]}`,                 // missing aln
		`{"genome_dir":"/x"}{"genome_dir":"/y"}`,              // trailing data
	} {
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("spec %q: status %d, want 400", body, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/jobs/j999")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET unknown job: %d, want 404", resp.StatusCode)
	}
}

// TestServiceFairnessDequeueOrder drives the scheduler's task-order hook
// through the service layer: with one worker and a long job queued first,
// a later small job is dispatched before the long job drains.
func TestServiceFairnessDequeueOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("service e2e in -short mode")
	}
	dirLong, dirSmall := t.TempDir(), t.TempDir()
	writeGenomeDir(t, dirLong, testSpecs(8, 1500, 23))
	writeGenomeDir(t, dirSmall, testSpecs(1, 1200, 77))

	var mu sync.Mutex
	var order []string
	_, ts := newTestServer(t, Config{
		Workers: 1,
		OnDequeue: func(job string, idx int) {
			mu.Lock()
			order = append(order, fmt.Sprintf("%s:%d", job, idx))
			mu.Unlock()
		},
	})

	idLong := postJob(t, ts, map[string]any{"genome_dir": dirLong, "engine": "gsnp-cpu", "window": 256})
	idSmall := postJob(t, ts, map[string]any{"genome_dir": dirSmall, "engine": "gsnp-cpu", "window": 256})
	readStream(t, ts, idSmall)
	readStream(t, ts, idLong)

	mu.Lock()
	defer mu.Unlock()
	smallAt := -1
	longSeen := 0
	for i, ev := range order {
		if strings.HasPrefix(ev, idSmall+":") {
			smallAt = i
			break
		}
		longSeen++
	}
	if smallAt == -1 {
		t.Fatalf("small job never dispatched: %v", order)
	}
	if longSeen >= 8 {
		t.Fatalf("small job dispatched only after the long job drained: %v", order)
	}
}
