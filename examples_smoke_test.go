package gsnp_test

import (
	"bytes"
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun executes the faster runnable examples end to end so the
// documented entry points cannot rot. The wholegenome example is exercised
// at reduced scale via its -scale flag.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("example smoke tests in -short mode")
	}
	cases := []struct {
		name string
		args []string
		want []string
	}{
		{"quickstart", nil, []string{"called", "vs ground truth"}},
		{"compression", nil, []string{"GSNP container", "decompressed"}},
		{"sortlab", nil, []string{"bitonic MP", "per-array GPU radix"}},
		{"fullpipeline", nil, []string{"aligned", "ground truth"}},
		{"wholegenome", []string{"-scale", "5"}, []string{"whole genome", "speedup"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			args := append([]string{"run", "./examples/" + tc.name}, tc.args...)
			cmd := exec.Command("go", args...)
			var out bytes.Buffer
			cmd.Stdout = &out
			cmd.Stderr = &out
			if err := cmd.Run(); err != nil {
				t.Fatalf("example failed: %v\n%s", err, out.String())
			}
			for _, want := range tc.want {
				if !strings.Contains(out.String(), want) {
					t.Errorf("output missing %q:\n%s", want, out.String())
				}
			}
		})
	}
}
