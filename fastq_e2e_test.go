package gsnp_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// goldenVCFDir holds the committed FASTQ→VCF pipeline output for the
// chr20–chr22 dataset below. Regenerate after an intentional output
// change:
//
//	for c in chr20 chr21 chr22; do
//	  go run ./cmd/gsnp-gen -out /tmp/golden -chr $c -scale 40 -seed 424242 -fastq
//	done
//	go run ./cmd/gsnp -genome-dir /tmp/golden -format fastq -output-format vcf \
//	  -engine gsnp-cpu -window 512 -workers 1
//	cp /tmp/golden/chr2{0,1,2}.vcf testdata/fastq_e2e/
const goldenVCFDir = "testdata/fastq_e2e"

var goldenChrs = []string{"chr20", "chr21", "chr22"}

// genGoldenDataset regenerates the golden dataset (reference FASTA + raw
// FASTQ reads per chromosome) into dir.
func genGoldenDataset(t *testing.T, dir string) {
	t.Helper()
	for _, c := range goldenChrs {
		run(t, "gsnp-gen", "-out", dir, "-chr", c, "-scale", "40", "-seed", "424242", "-fastq")
	}
}

// readGoldenVCFs loads the committed per-chromosome golden VCFs and
// sanity-checks that they are non-vacuous (header plus at least one
// variant record somewhere — an all-empty golden set would make every
// byte comparison pass trivially).
func readGoldenVCFs(t *testing.T) map[string][]byte {
	t.Helper()
	golden := make(map[string][]byte, len(goldenChrs))
	variants := 0
	for _, c := range goldenChrs {
		data, err := os.ReadFile(filepath.Join(goldenVCFDir, c+".vcf"))
		if err != nil {
			t.Fatalf("missing golden VCF (see goldenVCFDir comment to regenerate): %v", err)
		}
		if !bytes.HasPrefix(data, []byte("##fileformat=VCFv4.2\n")) {
			t.Fatalf("golden %s.vcf misses the VCF header", c)
		}
		for _, line := range bytes.Split(data, []byte{'\n'}) {
			if len(line) > 0 && line[0] != '#' {
				variants++
			}
		}
		golden[c] = data
	}
	if variants == 0 {
		t.Fatal("golden VCFs carry no variant records; the byte comparisons would be vacuous")
	}
	return golden
}

// TestFASTQToVCFGolden is the end-to-end acceptance test of the raw-reads
// pipeline: seeded simulated reads go in as FASTQ and the emitted VCF
// must match the committed golden bytes exactly — at every worker count,
// compute-worker count and align-worker count, on both the CPU and the
// simulated-GPU engine. One failure mode this pins: any nondeterminism in
// the in-process alignment stage or the windowed caller shows up as a
// byte diff against a file in version control.
func TestFASTQToVCFGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	golden := readGoldenVCFs(t)
	dir := t.TempDir()
	genGoldenDataset(t, dir)

	configs := []struct{ workers, computeWorkers, alignWorkers int }{
		{1, 1, 1},
		{2, 4, 2},
		{4, 1, 4},
		{4, 4, 1},
	}
	for _, engine := range []string{"gsnp-cpu", "gsnp-gpu"} {
		for _, cfg := range configs {
			name := fmt.Sprintf("%s/w%d-cw%d-aw%d", engine, cfg.workers, cfg.computeWorkers, cfg.alignWorkers)
			t.Run(name, func(t *testing.T) {
				run(t, "gsnp",
					"-genome-dir", dir, "-format", "fastq", "-output-format", "vcf",
					"-engine", engine, "-window", "512",
					"-workers", strconv.Itoa(cfg.workers),
					"-compute-workers", strconv.Itoa(cfg.computeWorkers),
					"-align-workers", strconv.Itoa(cfg.alignWorkers))
				for _, c := range goldenChrs {
					got, err := os.ReadFile(filepath.Join(dir, c+".vcf"))
					if err != nil {
						t.Fatalf("pipeline wrote no VCF for %s: %v", c, err)
					}
					if !bytes.Equal(got, golden[c]) {
						t.Errorf("%s.vcf differs from the committed golden bytes", c)
					}
				}
			})
		}
	}
}

// TestFASTQSingleFileMatchesGenomeDir pins the two CLI front doors of the
// pipeline against each other: calling one chromosome via -ref/-aln must
// produce the same bytes the -genome-dir batch path writes for it.
func TestFASTQSingleFileMatchesGenomeDir(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	golden := readGoldenVCFs(t)
	dir := t.TempDir()
	genGoldenDataset(t, dir)

	for _, c := range goldenChrs {
		out := filepath.Join(dir, c+".single.vcf")
		run(t, "gsnp",
			"-ref", filepath.Join(dir, c+".fa"),
			"-aln", filepath.Join(dir, c+".fq"),
			"-snp", filepath.Join(dir, c+".snp"),
			"-format", "fastq", "-output-format", "vcf",
			"-engine", "gsnp-cpu", "-window", "512",
			"-out", out)
		got, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, golden[c]) {
			t.Errorf("%s: single-file VCF differs from the genome-dir golden bytes", c)
		}
	}
}
