# CI entry points. `make ci` is the gate: vet, build, the full test
# suite, and the race detector over every package that spawns goroutines
# (the scheduler, the window prefetcher and the engines that consume it,
# and the parallel sort).

GO ?= go

RACE_PKGS = ./internal/pipeline ./internal/sched ./internal/gsnp ./internal/soapsnp ./internal/sortnet ./internal/faults ./internal/checkpoint

.PHONY: ci vet build test race bench bench-json

ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# One pass over every paper table/figure benchmark plus the scheduler
# benchmark; use -benchtime above 1x for stable numbers.
bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

# Window-level pipeline benchmarks (one op = one window) recorded as JSON:
# ns/window, B/op, allocs/op and sites/s per configuration, the perf
# trajectory artifact. Compare BENCH_pipeline.json across commits.
bench-json:
	$(GO) test -run xxx -bench BenchmarkRunWindow -benchmem ./internal/gsnp \
		| $(GO) run ./cmd/gsnp-benchjson > BENCH_pipeline.json
