# CI entry points. `make ci` is the gate: vet, build, the full test
# suite, the race detector over every package that spawns goroutines
# (the scheduler, the window prefetcher and the engines that consume it,
# the parallel sort, and the gsnpd service), the service integration
# tests against a real gsnpd binary, and a short fuzz pass over every
# parser-facing fuzz target.

GO ?= go

# Every goroutine-spawning package runs under the race detector: the
# schedulers, the prefetcher and its consumers, the parallel sort, the
# simulated GPU device, the fault/checkpoint machinery, the gsnpd
# service with its result cache and job journal, the shared genome-job
# decomposition both front-ends use, and the gsnpd daemon itself (its
# serve/signal goroutines). The list is audited against the tree:
# `gsnplint -go-pkgs ./...` prints every package containing a go
# statement, and TestRacePkgsCoverSpawningPackages fails when one is
# missing here.
RACE_PKGS = ./internal/pipeline ./internal/sched ./internal/gsnp ./internal/soapsnp ./internal/sortnet ./internal/faults ./internal/checkpoint ./internal/service ./internal/resultcache ./internal/genomejob ./internal/gpu ./internal/journal ./internal/align ./cmd/gsnpd

# Per-target budget for the fuzz smoke pass.
FUZZ_TIME ?= 10s

# Pinned govulncheck version for the (network-requiring) vuln gate; the
# offline build environment skips it gracefully. See tools.go.
GOVULNCHECK_VERSION ?= v1.1.4

.PHONY: ci lint vet fmt-check vuln build test race service-e2e serve-recovery fastq-e2e fuzz-smoke bench bench-json

ci: lint fmt-check build test race service-e2e serve-recovery fastq-e2e fuzz-smoke vuln

# Standard vet plus the project multichecker (cmd/gsnplint): the seven
# GSNP invariant analyzers — determinism, arenalifetime, closecheck,
# saturation, goroutinejoin, lockhold, durability — documented in
# DESIGN.md §9 and §13. Any finding fails the gate, and the machine-
# readable report lands in gsnplint-findings.json for CI to archive.
lint: vet
	@start=$$(date +%s); \
	$(GO) run ./cmd/gsnplint -json gsnplint-findings.json ./... ; rc=$$?; \
	echo "lint: gsnplint took $$(( $$(date +%s) - start ))s (report: gsnplint-findings.json)"; \
	exit $$rc

vet:
	$(GO) vet ./...

# gofmt cleanliness over the whole tree (testdata fixtures included).
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Known-vulnerability scan, pinned for reproducibility. The tool lives
# outside the module (the offline-first rule forbids adding x/vuln to
# go.mod when the module cache cannot fetch it), so probe availability
# first and skip — loudly — when it cannot be fetched.
vuln:
	@if $(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) -version >/dev/null 2>&1; then \
		$(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./... ; \
	else \
		echo "govulncheck $(GOVULNCHECK_VERSION) unavailable (offline build); skipping vulnerability scan"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# End-to-end service checks: the in-process HTTP tests under the race
# detector, then the black-box tests against a built gsnpd binary
# (concurrent jobs byte-identical to serial runs, SIGTERM drain).
service-e2e:
	$(GO) test -race -run 'TestService' ./internal/service
	$(GO) test -run 'TestGsnpd' .

# Crash-durability checks: the WAL journal package under the race
# detector, the in-process recovery/backpressure tests, then the
# black-box kill -9 test — gsnpd is SIGKILLed mid-job and a restarted
# daemon must resume from the journal and produce byte-identical output.
serve-recovery:
	$(GO) test -race ./internal/journal
	$(GO) test -race -run 'TestServiceJournal|TestServiceMaxQueued' ./internal/service
	$(GO) test -run 'TestGsnpdCrashRecovery' .

# FASTQ-to-VCF pipeline checks: the aligner's parallel-shard equivalence
# and quals-normalization tests, the VCF semantic property suite, then
# the black-box golden test — raw reads through the built gsnp binary at
# every worker/compute-worker/align-worker setting on both engines, bytes
# pinned against testdata/fastq_e2e/.
fastq-e2e:
	$(GO) test -race ./internal/align
	$(GO) test -run 'TestFASTQToVCF' ./internal/genomejob
	$(GO) test -run 'TestFASTQ' .

# Short fuzz pass over every fuzz target (each gets $(FUZZ_TIME)); the
# committed corpora under testdata/fuzz/ seed the runs. `go test -fuzz`
# takes one target per invocation, hence one line per target.
fuzz-smoke:
	$(GO) test -fuzz 'FuzzParseRow$$' -fuzztime $(FUZZ_TIME) ./internal/snpio
	$(GO) test -fuzz 'FuzzSOAPReader$$' -fuzztime $(FUZZ_TIME) ./internal/snpio
	$(GO) test -fuzz 'FuzzFASTQReader$$' -fuzztime $(FUZZ_TIME) ./internal/snpio
	$(GO) test -fuzz 'FuzzSAMReader$$' -fuzztime $(FUZZ_TIME) ./internal/snpio
	$(GO) test -fuzz 'FuzzAlignReads$$' -fuzztime $(FUZZ_TIME) ./internal/align
	$(GO) test -fuzz 'FuzzBlockReader$$' -fuzztime $(FUZZ_TIME) ./internal/snpio
	$(GO) test -fuzz 'FuzzTempReader$$' -fuzztime $(FUZZ_TIME) ./internal/snpio
	$(GO) test -fuzz 'FuzzJobSpec$$' -fuzztime $(FUZZ_TIME) ./internal/service
	$(GO) test -fuzz 'FuzzRLEDictDecode$$' -fuzztime $(FUZZ_TIME) ./internal/compress
	$(GO) test -fuzz 'FuzzSparseDecode$$' -fuzztime $(FUZZ_TIME) ./internal/compress
	$(GO) test -fuzz 'FuzzDictDecode$$' -fuzztime $(FUZZ_TIME) ./internal/compress
	$(GO) test -fuzz 'FuzzUnpack2Bit$$' -fuzztime $(FUZZ_TIME) ./internal/compress

# One pass over every paper table/figure benchmark plus the scheduler
# benchmark; use -benchtime above 1x for stable numbers.
bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

# Window-level pipeline benchmarks (one op = one window) plus the gsnpd
# serving benchmarks (cache hit vs cold execution) recorded as JSON:
# ns/op, B/op, allocs/op per configuration, the perf trajectory
# artifact. Compare BENCH_pipeline.json across commits.
bench-json:
	{ $(GO) test -run xxx -bench BenchmarkRunWindow -benchmem ./internal/gsnp ./internal/gpu ; \
	  $(GO) test -run xxx -bench 'BenchmarkServe' -benchmem ./internal/service ; \
	  $(GO) test -run xxx -bench 'BenchmarkAlignReads' -benchmem ./internal/align ; } \
		| $(GO) run ./cmd/gsnp-benchjson > BENCH_pipeline.json
